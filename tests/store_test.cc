// Tests for the out-of-core columnar store (src/store/): format round-trip,
// corruption rejection, shard manifests, fault injection, and — the load-
// bearing property — bitwise-identical streamed counts at every chunk size,
// shard count, and thread count.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/data_source.h"
#include "data/preprocess.h"
#include "data/simulators.h"
#include "marginal/marginal.h"
#include "parallel/thread_pool.h"
#include "robust/fault.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"
#include "util/rng.h"

namespace aim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

// Domain exercising all three encoding widths (u8, u16, u32).
Domain MixedWidthDomain() { return Domain::WithSizes({3, 300, 70000}); }

Dataset MixedWidthDataset(int64_t n, uint64_t seed = 7) {
  Rng rng(seed);
  return SampleRandomBayesNet(MixedWidthDomain(), n, 2, 0.5, rng);
}

// Restores the automatic thread count even when a test fails mid-body.
struct ScopedThreads {
  explicit ScopedThreads(int n) { SetParallelThreads(n); }
  ~ScopedThreads() { SetParallelThreads(0); }
};

// ----------------------------------------------------------- Round trip ----

TEST(StoreTest, RoundTripSingleFile) {
  const Dataset data = MixedWidthDataset(500);
  const std::string path = TempPath("roundtrip.aim");
  ASSERT_TRUE(WriteStore(data, path).ok());

  StatusOr<StoreReader> reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader->domain() == data.domain());
  EXPECT_EQ(reader->num_records(), data.num_records());
  EXPECT_EQ(reader->width(0), 1);
  EXPECT_EQ(reader->width(1), 2);
  EXPECT_EQ(reader->width(2), 4);
  for (int64_t row = 0; row < data.num_records(); ++row) {
    for (int a = 0; a < data.domain().num_attributes(); ++a) {
      ASSERT_EQ(reader->value(row, a), data.value(row, a))
          << "row " << row << " attr " << a;
    }
  }
}

TEST(StoreTest, RoundTripSharded) {
  const Dataset data = MixedWidthDataset(1000);
  const std::string path = TempPath("sharded_roundtrip.aim");
  StoreWriterOptions options;
  options.shard_rows = 334;
  ASSERT_TRUE(WriteStore(data, path, options).ok());

  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->num_shards(), 3);
  EXPECT_EQ((*source)->num_records(), data.num_records());
  int64_t shard_total = 0;
  for (int s = 0; s < (*source)->num_shards(); ++s) {
    shard_total += (*source)->ShardRecords(s);
  }
  EXPECT_EQ(shard_total, data.num_records());

  const Dataset materialized = (*source)->Materialize();
  ASSERT_EQ(materialized.num_records(), data.num_records());
  for (int64_t row = 0; row < data.num_records(); ++row) {
    for (int a = 0; a < data.domain().num_attributes(); ++a) {
      ASSERT_EQ(materialized.value(row, a), data.value(row, a));
    }
  }
}

TEST(StoreTest, EmptyDatasetRoundTrip) {
  const Domain domain = MixedWidthDomain();
  const std::string path = TempPath("empty.aim");
  StoreWriter writer(domain, path);
  ASSERT_TRUE(writer.Finish().ok());

  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->num_records(), 0);
  EXPECT_TRUE((*source)->domain() == domain);
  const std::vector<double> counts = ComputeMarginal(**source, AttrSet({0}));
  for (double c : counts) EXPECT_EQ(c, 0.0);
}

TEST(StoreTest, IsStoreFileDetection) {
  const Dataset data = MixedWidthDataset(50);
  const std::string single = TempPath("detect_single.aim");
  const std::string sharded = TempPath("detect_sharded.aim");
  const std::string csv = TempPath("detect.csv");
  StoreWriterOptions options;
  options.shard_rows = 20;
  ASSERT_TRUE(WriteStore(data, single).ok());
  ASSERT_TRUE(WriteStore(data, sharded, options).ok());
  WriteFile(csv, "a,b,c\n1,2,3\n");

  EXPECT_TRUE(IsStoreFile(single));
  EXPECT_TRUE(IsStoreFile(sharded));  // manifest magic
  EXPECT_FALSE(IsStoreFile(csv));
  EXPECT_FALSE(IsStoreFile(TempPath("no_such_file.aim")));
}

// ------------------------------------------- Streamed count determinism ----

TEST(StoreTest, StreamedCountsBitwiseEqualInMemoryPath) {
  const Dataset data = MixedWidthDataset(1000);
  // Small marginals only: the chunk_rows=1 leg of the matrix allocates one
  // local histogram per row, so cells x rows must stay modest. Wide
  // (width-4) marginals are covered by WideMarginalStreamsAtWidth4 below.
  const std::vector<AttrSet> queries = {AttrSet({0}), AttrSet({0, 1})};
  // Reference: the in-memory Dataset overload (what the seed computed).
  std::vector<std::vector<double>> reference;
  for (const AttrSet& r : queries) {
    reference.push_back(ComputeMarginal(data, r));
  }

  for (int64_t shard_rows : {int64_t{0}, int64_t{334}}) {
    const std::string path = TempPath(
        "equality_" + std::to_string(shard_rows) + ".aim");
    StoreWriterOptions options;
    options.shard_rows = shard_rows;
    ASSERT_TRUE(WriteStore(data, path, options).ok());
    StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    EXPECT_EQ((*source)->num_shards(), shard_rows == 0 ? 1 : 3);

    for (int threads : {1, 8}) {
      ScopedThreads scoped(threads);
      for (int64_t chunk_rows : {int64_t{1}, int64_t{7}, int64_t{4096}}) {
        MarginalCountOptions count_options;
        count_options.chunk_rows = chunk_rows;
        for (size_t q = 0; q < queries.size(); ++q) {
          const std::vector<double> streamed =
              ComputeMarginal(**source, queries[q], 1.0, count_options);
          ASSERT_EQ(streamed.size(), reference[q].size());
          for (size_t i = 0; i < streamed.size(); ++i) {
            // Bitwise equality: integer accumulation makes every chunk
            // plan, shard split, and thread count produce the same count.
            ASSERT_EQ(streamed[i], reference[q][i])
                << "shard_rows=" << shard_rows << " threads=" << threads
                << " chunk_rows=" << chunk_rows << " query=" << q
                << " cell=" << i;
          }
        }
      }
    }
  }
}

TEST(StoreTest, WideMarginalStreamsAtWidth4) {
  // A marginal touching the u32-encoded attribute (70000 values), counted
  // with a chunk plan that actually splits the rows.
  const Dataset data = MixedWidthDataset(1000);
  const std::string path = TempPath("wide.aim");
  StoreWriterOptions options;
  options.shard_rows = 334;
  ASSERT_TRUE(WriteStore(data, path, options).ok());
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_TRUE(source.ok());

  const AttrSet r({0, 2});
  const std::vector<double> in_memory = ComputeMarginal(data, r);
  MarginalCountOptions count_options;
  count_options.chunk_rows = 100;
  const std::vector<double> streamed =
      ComputeMarginal(**source, r, 1.0, count_options);
  ASSERT_EQ(in_memory.size(), streamed.size());
  for (size_t i = 0; i < in_memory.size(); ++i) {
    ASSERT_EQ(in_memory[i], streamed[i]);
  }
}

TEST(StoreTest, WeightedStreamedCountsMatchInMemory) {
  const Dataset data = MixedWidthDataset(400);
  const std::string path = TempPath("weighted.aim");
  ASSERT_TRUE(WriteStore(data, path).ok());
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_TRUE(source.ok());
  const AttrSet r({0, 1});
  const double weight = 1.0 / 3.0;
  const std::vector<double> in_memory = ComputeMarginal(data, r, weight);
  const std::vector<double> streamed = ComputeMarginal(**source, r, weight);
  ASSERT_EQ(in_memory.size(), streamed.size());
  for (size_t i = 0; i < in_memory.size(); ++i) {
    EXPECT_EQ(in_memory[i], streamed[i]);
  }
}

TEST(StoreTest, ReleasePagesBoundsResidency) {
  // A store several hundred times the chunk working set; streaming with
  // release_pages drops consumed pages, so residency stays well under the
  // full mapping.
  const int64_t n = 2000000;
  std::vector<std::vector<int32_t>> columns(2);
  columns[0].reserve(n);
  columns[1].reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    columns[0].push_back(static_cast<int32_t>(i % 250));
    columns[1].push_back(static_cast<int32_t>((i * 7) % 4000));
  }
  const Dataset data = Dataset::FromColumns(Domain::WithSizes({250, 4000}),
                                            std::move(columns));
  const std::string path = TempPath("residency.aim");
  ASSERT_TRUE(WriteStore(data, path).ok());
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_TRUE(source.ok());

  MarginalCountOptions options;
  options.chunk_rows = 8192;
  options.release_pages = true;
  const std::vector<double> streamed =
      ComputeMarginal(**source, AttrSet({0}), 1.0, options);
  const std::vector<double> in_memory = ComputeMarginal(data, AttrSet({0}));
  for (size_t i = 0; i < streamed.size(); ++i) {
    ASSERT_EQ(streamed[i], in_memory[i]);
  }

  const int64_t resident = (*source)->ResidentBytes();
  if (resident < 0) GTEST_SKIP() << "/proc/self/smaps unavailable";
  EXPECT_LT(resident, (*source)->mapped_bytes() / 2)
      << "streamed pass left most of the mapping resident";
}

// ---------------------------------------------------- Corruption defense ----

// `tag` must be unique per test: ctest runs each case as its own process,
// so a shared scratch path would race between concurrently-running tests.
std::string SerializedShard(const Dataset& data, const std::string& tag) {
  const std::string path = TempPath("serialize_" + tag + ".aim");
  EXPECT_TRUE(WriteStore(data, path).ok());
  return ReadFileBytes(path);
}

TEST(StoreTest, RejectsBadMagic) {
  std::string bytes = SerializedShard(MixedWidthDataset(100), "bad_magic");
  bytes[0] = 'X';
  const std::string path = TempPath("bad_magic.aim");
  WriteFile(path, bytes);
  StatusOr<StoreReader> reader = StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("bad magic"), std::string::npos);
  // The source-level opener no longer sees a store, and the bytes are not
  // a manifest either.
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_NE(source.status().ToString().find("neither an .aim store"),
            std::string::npos);
}

TEST(StoreTest, RejectsUnsupportedVersion) {
  std::string bytes = SerializedShard(MixedWidthDataset(100), "bad_version");
  bytes[8] = static_cast<char>(0x7f);
  const std::string path = TempPath("bad_version.aim");
  WriteFile(path, bytes);
  StatusOr<StoreReader> reader = StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("unsupported format version"),
            std::string::npos);
}

TEST(StoreTest, RejectsTruncatedHeader) {
  std::string bytes = SerializedShard(MixedWidthDataset(100), "truncated_header");
  bytes.resize(10);
  const std::string path = TempPath("truncated_header.aim");
  WriteFile(path, bytes);
  StatusOr<StoreReader> reader = StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("too small"), std::string::npos);
}

TEST(StoreTest, RejectsTruncatedColumns) {
  std::string bytes = SerializedShard(MixedWidthDataset(100), "truncated_columns");
  bytes.resize(bytes.size() - 64);
  const std::string path = TempPath("truncated_columns.aim");
  WriteFile(path, bytes);
  StatusOr<StoreReader> reader = StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("out of file bounds"),
            std::string::npos);
}

TEST(StoreTest, RejectsFlippedHeaderByte) {
  std::string bytes = SerializedShard(MixedWidthDataset(100), "flipped_header");
  // Inside the attribute table (after the fixed prefix): caught by the
  // whole-header checksum before any entry is trusted.
  bytes[store_format::kFixedHeaderBytes + 1] ^= 0x40;
  const std::string path = TempPath("flipped_header.aim");
  WriteFile(path, bytes);
  StatusOr<StoreReader> reader = StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("header checksum mismatch"),
            std::string::npos);
}

TEST(StoreTest, RejectsFlippedColumnByte) {
  std::string bytes = SerializedShard(MixedWidthDataset(100), "flipped_column");
  // The file ends with the last column's final value byte.
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  const std::string path = TempPath("flipped_column.aim");
  WriteFile(path, bytes);
  StatusOr<StoreReader> reader = StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("column checksum mismatch"),
            std::string::npos);
}

TEST(StoreTest, RejectsOutOfDomainValueOnVerify) {
  // Hand-build a shard whose checksums are all valid but whose column
  // holds a value outside the declared domain — exactly the corruption a
  // checksum cannot catch and the verify scan exists for.
  const Domain domain = Domain::WithSizes({4});
  std::vector<std::string> column_bytes(1);
  column_bytes[0].push_back(static_cast<char>(2));
  column_bytes[0].push_back(static_cast<char>(9));  // domain is [0, 4)
  const std::string path = TempPath("out_of_domain.aim");
  WriteFile(path, SerializeStoreShard(domain, column_bytes, 2));

  StatusOr<StoreReader> verified = StoreReader::Open(path);
  ASSERT_FALSE(verified.ok());
  EXPECT_NE(verified.status().ToString().find("out of domain"),
            std::string::npos);

  StoreOpenOptions trusting;
  trusting.verify = false;
  EXPECT_TRUE(StoreReader::Open(path, trusting).ok());
}

// ------------------------------------------------------------- Manifest ----

// Builds a checksum-valid manifest from raw body lines.
std::string ManifestWithBody(const std::string& body) {
  std::string manifest = std::string(store_format::kManifestMagic) + " v1\n" +
                         body;
  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(
                    store_format::Fnv1a(manifest.data(), manifest.size())));
  return manifest + "checksum " + checksum + "\n";
}

TEST(StoreTest, RejectsManifestChecksumMismatch) {
  const Dataset data = MixedWidthDataset(100);
  const std::string path = TempPath("manifest_corrupt.aim");
  StoreWriterOptions options;
  options.shard_rows = 40;
  ASSERT_TRUE(WriteStore(data, path, options).ok());
  std::string manifest = ReadFileBytes(path);
  const size_t digit = manifest.find("shards ") + 7;
  manifest[digit] = manifest[digit] == '3' ? '2' : '3';
  WriteFile(path, manifest);
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_NE(source.status().ToString().find("checksum mismatch"),
            std::string::npos);
}

TEST(StoreTest, RejectsManifestRowCountMismatch) {
  const Dataset data = MixedWidthDataset(100);
  const std::string shard = TempPath("rows_mismatch_shard.aim");
  ASSERT_TRUE(WriteStore(data, shard).ok());
  const std::string path = TempPath("rows_mismatch.aim");
  WriteFile(path, ManifestWithBody(
                      "shards 1\ns rows_mismatch_shard.aim 99\n"));
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_NE(source.status().ToString().find(
                "row count disagrees with the manifest"),
            std::string::npos);
}

TEST(StoreTest, RejectsManifestDomainMismatch) {
  Rng rng(3);
  const Dataset a = MixedWidthDataset(50);
  const Dataset b =
      SampleRandomBayesNet(Domain::WithSizes({5, 6}), 50, 1, 0.5, rng);
  const std::string shard_a = TempPath("domain_a.aim");
  const std::string shard_b = TempPath("domain_b.aim");
  ASSERT_TRUE(WriteStore(a, shard_a).ok());
  ASSERT_TRUE(WriteStore(b, shard_b).ok());
  const std::string path = TempPath("domain_mismatch.aim");
  WriteFile(path, ManifestWithBody(
                      "shards 2\ns domain_a.aim 50\ns domain_b.aim 50\n"));
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_NE(source.status().ToString().find("domain disagrees"),
            std::string::npos);
}

TEST(StoreTest, RejectsManifestMissingShard) {
  const std::string path = TempPath("missing_shard.aim");
  WriteFile(path, ManifestWithBody("shards 1\ns no_such_shard.aim 10\n"));
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kNotFound);
}

TEST(StoreTest, RejectsManifestPathTraversal) {
  const std::string path = TempPath("traversal.aim");
  WriteFile(path, ManifestWithBody("shards 1\ns ../evil.aim 10\n"));
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_NE(source.status().ToString().find(
                "must be relative to the manifest"),
            std::string::npos);
}

// ------------------------------------------------------ Fault injection ----

TEST(StoreTest, StoreReadFaultPointFires) {
  const Dataset data = MixedWidthDataset(50);
  const std::string path = TempPath("faulted.aim");
  ASSERT_TRUE(WriteStore(data, path).ok());

  ScopedFaults faults("store_read:n=1");
  StatusOr<StoreReader> first = StoreReader::Open(path);
  ASSERT_FALSE(first.ok());
  EXPECT_NE(first.status().ToString().find("fault injected: store_read"),
            std::string::npos);
  // Only the first hit fires; the retry opens cleanly.
  EXPECT_TRUE(StoreReader::Open(path).ok());
}

TEST(StoreTest, StoreSourcePropagatesPersistentShardOpenFault) {
  const Dataset data = MixedWidthDataset(100);
  const std::string path = TempPath("faulted_sharded.aim");
  StoreWriterOptions options;
  options.shard_rows = 40;
  ASSERT_TRUE(WriteStore(data, path, options).ok());

  // after=0 fails EVERY open attempt: the built-in retry (3 attempts per
  // shard) exhausts and the failure propagates, annotated as such.
  ScopedFaults faults("store_read:after=0");
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_NE(source.status().ToString().find("fault injected: store_read"),
            std::string::npos);
  EXPECT_NE(source.status().ToString().find("retries exhausted"),
            std::string::npos)
      << source.status().ToString();
}

TEST(StoreTest, StoreSourceRetriesPastTransientShardOpenFault) {
  const Dataset data = MixedWidthDataset(100);
  const std::string path = TempPath("retried_sharded.aim");
  StoreWriterOptions options;
  options.shard_rows = 40;
  ASSERT_TRUE(WriteStore(data, path, options).ok());

  // One transient failure on the second shard open: the retry wrapper
  // re-attempts and the source comes up fully usable.
  ScopedFaults faults("store_read:n=2");
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->num_records(), data.num_records());
  EXPECT_GE(FaultHitCount("store_read"), 2);
}

TEST(StoreTest, StoreSourceRetriesPastTransientManifestFault) {
  const Dataset data = MixedWidthDataset(100);
  const std::string path = TempPath("retried_manifest.aim");
  StoreWriterOptions options;
  options.shard_rows = 40;
  ASSERT_TRUE(WriteStore(data, path, options).ok());

  ScopedFaults faults("manifest_open:n=1");
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->num_records(), data.num_records());
}

TEST(StoreTest, StoreSourcePropagatesPersistentManifestFault) {
  const Dataset data = MixedWidthDataset(100);
  const std::string path = TempPath("dead_manifest.aim");
  StoreWriterOptions options;
  options.shard_rows = 40;
  ASSERT_TRUE(WriteStore(data, path, options).ok());

  ScopedFaults faults("manifest_open:after=0");
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_NE(
      source.status().ToString().find("fault injected: manifest_open"),
      std::string::npos);
}

TEST(StoreTest, CorruptionIsFatalNotRetried) {
  // A checksum mismatch is kInvalidArgument — the retry wrapper must pass
  // it through on first sight (hit count 1, not max_attempts).
  const Dataset data = MixedWidthDataset(50);
  const std::string path = TempPath("fatal_corrupt.aim");
  ASSERT_TRUE(WriteStore(data, path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() / 2] ^= 0x40;
  WriteFile(path, bytes);

  ScopedFaults faults("store_read:p=0");  // armed, so hits are counted
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultHitCount("store_read"), 1);
}

// --------------------------------------------------------------- Writer ----

TEST(StoreTest, WriterRejectsOutOfDomainRecord) {
  StoreWriter writer(Domain::WithSizes({3, 4}), TempPath("reject.aim"));
  ASSERT_TRUE(writer.Append({2, 3}).ok());
  Status bad = writer.Append({2, 4});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.ToString().find("out of domain"), std::string::npos);
  // The writer is dead after the first error: every later call reports it.
  EXPECT_FALSE(writer.Append({0, 0}).ok());
  EXPECT_FALSE(writer.Finish().ok());
}

TEST(StoreTest, WriterRejectsWrongArity) {
  StoreWriter writer(Domain::WithSizes({3, 4}), TempPath("arity.aim"));
  Status bad = writer.Append({1});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.ToString().find("1 values"), std::string::npos);
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

TEST(StoreTest, WriterTracksWrittenPathsAndRemovesThem) {
  const Dataset data = MixedWidthDataset(100);
  const std::string path = TempPath("cleanup_tracked.aim");
  StoreWriterOptions options;
  options.shard_rows = 40;
  StoreWriter writer(data.domain(), path, options);
  std::vector<int> record(data.domain().num_attributes());
  for (int64_t row = 0; row < data.num_records(); ++row) {
    for (int a = 0; a < data.domain().num_attributes(); ++a) {
      record[a] = data.value(row, a);
    }
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  // 3 shards + the manifest, all on disk.
  ASSERT_EQ(writer.written_paths().size(), 4u);
  for (const std::string& p : writer.written_paths()) {
    EXPECT_TRUE(FileExists(p)) << p;
  }

  writer.RemovePartialOutputs();
  EXPECT_TRUE(writer.written_paths().empty());
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(TempPath("cleanup_tracked.00000.aim")));
  EXPECT_FALSE(FileExists(TempPath("cleanup_tracked.00001.aim")));
  EXPECT_FALSE(FileExists(TempPath("cleanup_tracked.00002.aim")));
}

TEST(StoreTest, FailedShardedConversionLeavesNothingBehind) {
  // The csv2aim contract: a store_write fault mid-conversion kills the
  // writer; RemovePartialOutputs then leaves the output location empty —
  // no truncated store, no manifest naming missing shards.
  const Dataset data = MixedWidthDataset(100);
  const std::string path = TempPath("cleanup_faulted.aim");
  StoreWriterOptions options;
  options.shard_rows = 40;
  StoreWriter writer(data.domain(), path, options);
  std::vector<int> record(data.domain().num_attributes());
  Status status;
  {
    ScopedFaults faults("store_write:n=2");  // second shard flush dies
    for (int64_t row = 0; row < data.num_records() && status.ok(); ++row) {
      for (int a = 0; a < data.domain().num_attributes(); ++a) {
        record[a] = data.value(row, a);
      }
      status = writer.Append(record);
    }
    if (status.ok()) status = writer.Finish();
  }
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("fault injected: store_write"),
            std::string::npos);
  // The first shard made it to disk before the fault.
  EXPECT_EQ(writer.written_paths().size(), 1u);

  writer.RemovePartialOutputs();
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(TempPath("cleanup_faulted.00000.aim")));
  EXPECT_FALSE(FileExists(TempPath("cleanup_faulted.00001.aim")));
}

// --------------------------------------------------- Corruption fuzzing ----

// Deterministic mixer for the fuzz sweeps (repo-standard SplitMix64).
uint64_t FuzzMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TEST(StoreTest, HeaderCorruptionFuzzNeverCrashesOrAccepts) {
  // 256 seeded byte-flip / truncation mutations against a valid .aim file.
  // Every mutant must be rejected with a typed error (checksums + bounds
  // checks), and none may crash the reader. Mutating the trailing bytes of
  // the payload region cannot produce a different-but-valid store because
  // the whole file is checksummed.
  const Dataset data = MixedWidthDataset(64);
  const std::string clean_path = TempPath("fuzz_clean.aim");
  ASSERT_TRUE(WriteStore(data, clean_path).ok());
  const std::string clean = ReadFileBytes(clean_path);
  ASSERT_GT(clean.size(), 16u);

  const std::string path = TempPath("fuzz_mutant.aim");
  int rejected = 0;
  for (uint64_t seed = 0; seed < 256; ++seed) {
    std::string mutant = clean;
    const uint64_t r = FuzzMix(seed);
    if (seed % 4 == 3) {
      // Truncate to a strictly shorter prefix (possibly empty).
      mutant.resize(r % clean.size());
    } else {
      // Flip one bit somewhere in the file.
      const size_t pos = r % clean.size();
      mutant[pos] = static_cast<char>(
          mutant[pos] ^ static_cast<char>(1u << (FuzzMix(r) % 8)));
    }
    WriteFile(path, mutant);
    StatusOr<StoreReader> reader = StoreReader::Open(path);
    if (!reader.ok()) {
      EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument)
          << "seed " << seed << ": " << reader.status().ToString();
      EXPECT_FALSE(reader.status().message().empty());
      ++rejected;
      continue;
    }
    // The only acceptable accepted mutant is one whose flip landed in the
    // 64-byte alignment padding between checksummed regions: the decoded
    // data must be bit-identical to the clean store.
    ASSERT_EQ(reader->num_records(), data.num_records()) << "seed " << seed;
    for (int64_t row = 0; row < data.num_records(); ++row) {
      for (int a = 0; a < data.domain().num_attributes(); ++a) {
        ASSERT_EQ(reader->value(row, a), data.value(row, a))
            << "seed " << seed << " accepted a mutant with altered data";
      }
    }
  }
  // The checksummed regions dominate the file, so the sweep must reject
  // nearly everything.
  EXPECT_GE(rejected, 200);
}

TEST(StoreTest, ManifestCorruptionFuzzNeverCrashesOrAccepts) {
  // Same sweep against a shard manifest: every mutant either fails the
  // manifest checksum or trips a structural check; shard files stay valid.
  const Dataset data = MixedWidthDataset(100);
  const std::string clean_path = TempPath("fuzz_manifest.aim");
  StoreWriterOptions options;
  options.shard_rows = 40;
  ASSERT_TRUE(WriteStore(data, clean_path, options).ok());
  const std::string clean = ReadFileBytes(clean_path);
  ASSERT_GT(clean.size(), 16u);

  for (uint64_t seed = 0; seed < 128; ++seed) {
    std::string mutant = clean;
    const uint64_t r = FuzzMix(0x5eedULL ^ seed);
    if (seed % 4 == 3) {
      mutant.resize(r % clean.size());
    } else {
      const size_t pos = r % clean.size();
      mutant[pos] = static_cast<char>(
          mutant[pos] ^ static_cast<char>(1u << (FuzzMix(r) % 8)));
    }
    WriteFile(clean_path, mutant);
    StatusOr<std::unique_ptr<StoreSource>> source =
        StoreSource::Open(clean_path);
    if (!source.ok()) {
      EXPECT_FALSE(source.status().message().empty());
      continue;
    }
    // Accepted mutants (e.g. a truncated trailing newline) must decode to
    // exactly the clean records.
    const Dataset decoded = (*source)->Materialize();
    ASSERT_EQ(decoded.num_records(), data.num_records()) << "seed " << seed;
    for (int64_t row = 0; row < data.num_records(); ++row) {
      for (int a = 0; a < data.domain().num_attributes(); ++a) {
        ASSERT_EQ(decoded.value(row, a), data.value(row, a))
            << "seed " << seed << " accepted a mutant with altered data";
      }
    }
  }
  // Restore the clean manifest: the store must open again (proving the
  // sweep only ever damaged the manifest copy under test).
  WriteFile(clean_path, clean);
  EXPECT_TRUE(StoreSource::Open(clean_path).ok());
}

// ------------------------------------------------- Satellites (data/...) ----

TEST(DatasetValidationTest, FromColumnsValidatedAcceptsInDomain) {
  StatusOr<Dataset> data = Dataset::FromColumnsValidated(
      Domain::WithSizes({3, 2}), {{0, 1, 2}, {1, 0, 1}});
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->num_records(), 3);
  EXPECT_EQ(data->value(2, 0), 2);
}

TEST(DatasetValidationTest, FromColumnsValidatedRejectsColumnCount) {
  StatusOr<Dataset> data =
      Dataset::FromColumnsValidated(Domain::WithSizes({3, 2}), {{0, 1}});
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetValidationTest, FromColumnsValidatedRejectsLengthMismatch) {
  StatusOr<Dataset> data = Dataset::FromColumnsValidated(
      Domain::WithSizes({3, 2}), {{0, 1, 2}, {1, 0}});
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetValidationTest, FromColumnsValidatedRejectsOutOfDomain) {
  StatusOr<Dataset> data = Dataset::FromColumnsValidated(
      Domain::WithSizes({3, 2}), {{0, 1, 3}, {1, 0, 1}});
  ASSERT_FALSE(data.ok());
  EXPECT_NE(data.status().ToString().find("3"), std::string::npos);
}

TEST(PreprocessStoreTest, PreprocessedCsvRoundTripsThroughStore) {
  // CSV -> preprocess -> store -> streamed counts must equal the in-memory
  // counts on the preprocessed dataset (the csv2aim + aim_cli --data path).
  RawTable table;
  table.header = {"color", "score"};
  const char* colors[] = {"red", "green", "blue"};
  for (int i = 0; i < 200; ++i) {
    table.rows.push_back(
        {colors[i % 3], std::to_string((i * 37) % 100)});
  }
  StatusOr<PreprocessResult> prep = Preprocess(table, {});
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();

  const std::string path = TempPath("preprocessed.aim");
  StoreWriterOptions options;
  options.shard_rows = 64;
  ASSERT_TRUE(WriteStore(prep->dataset, path, options).ok());
  StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();

  const AttrSet r({0, 1});
  const std::vector<double> streamed = ComputeMarginal(**source, r);
  const std::vector<double> in_memory = ComputeMarginal(prep->dataset, r);
  ASSERT_EQ(streamed.size(), in_memory.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], in_memory[i]);
  }
}

TEST(DataSourceTest, DatasetSourceExposesZeroCopyViews) {
  const Dataset data = MixedWidthDataset(64);
  const DatasetSource source(data);
  EXPECT_EQ(source.num_shards(), 1);
  EXPECT_EQ(source.ShardRecords(0), 64);
  for (int a = 0; a < data.domain().num_attributes(); ++a) {
    ColumnView view;
    ASSERT_TRUE(source.TryColumnView(0, a, 16, 64, &view));
    EXPECT_EQ(view.width, 4);
    for (int64_t i = 0; i < 48; ++i) {
      ASSERT_EQ(view.at(i), data.value(16 + i, a));
    }
  }
}

}  // namespace
}  // namespace aim
