// Randomized cross-validation of the full inference stack: for a sweep of
// random domains, clique structures, and potentials, belief-propagation
// marginals must match brute-force enumeration, estimation must reproduce
// exact measurements, and generated data must follow the model. These are
// the invariants everything above the pgm layer relies on.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "data/simulators.h"
#include "marginal/marginal.h"
#include "pgm/estimation.h"
#include "pgm/markov_random_field.h"
#include "pgm/synthetic.h"
#include "test_util.h"
#include "util/math.h"
#include "util/rng.h"

namespace aim {
namespace {

using testing_util::BruteForceMarginal;
using testing_util::MaxAbsDiff;

struct RandomModelCase {
  uint64_t seed;
  int num_attrs;
  int max_size;
  int num_cliques;
  int clique_width;
};

// Builds a random model over a small random domain.
MarkovRandomField MakeRandomModel(const RandomModelCase& c, Domain* domain) {
  Rng rng(c.seed);
  std::vector<int> sizes(c.num_attrs);
  for (int& s : sizes) s = 2 + static_cast<int>(rng.UniformInt(c.max_size - 1));
  *domain = Domain::WithSizes(sizes);
  std::vector<AttrSet> cliques;
  for (int i = 0; i < c.num_cliques; ++i) {
    std::vector<int> attrs;
    for (int j = 0; j < c.clique_width; ++j) {
      attrs.push_back(static_cast<int>(rng.UniformInt(c.num_attrs)));
    }
    cliques.push_back(AttrSet(attrs));
  }
  MarkovRandomField model(*domain, cliques);
  model.set_total(1000.0);
  for (int i = 0; i < model.num_cliques(); ++i) {
    Factor p = model.potential(i);
    for (double& v : p.mutable_values()) v = rng.Uniform(-1.5, 1.5);
    model.SetPotential(i, std::move(p));
  }
  model.Calibrate();
  return model;
}

class RandomModelTest : public ::testing::TestWithParam<RandomModelCase> {};

TEST_P(RandomModelTest, AllOneAndTwoWayMarginalsMatchBruteForce) {
  Domain domain;
  MarkovRandomField model = MakeRandomModel(GetParam(), &domain);
  for (int a = 0; a < domain.num_attributes(); ++a) {
    for (int b = a; b < domain.num_attributes(); ++b) {
      AttrSet r = (a == b) ? AttrSet({a}) : AttrSet({a, b});
      std::vector<double> expected = BruteForceMarginal(model, r);
      std::vector<double> actual = model.MarginalVector(r);
      EXPECT_LT(MaxAbsDiff(expected, actual), 1e-7)
          << "mismatch on " << r.ToString() << " seed " << GetParam().seed;
    }
  }
}

TEST_P(RandomModelTest, MarginalsAreConsistentUnderProjection) {
  // Summing the model's {a,b} marginal over b must equal its {a} marginal
  // (marginal consistency — what Private-PGM guarantees by construction).
  Domain domain;
  MarkovRandomField model = MakeRandomModel(GetParam(), &domain);
  for (int a = 0; a + 1 < domain.num_attributes(); ++a) {
    int b = a + 1;
    std::vector<double> joint = model.MarginalVector(AttrSet({a, b}));
    std::vector<double> single = model.MarginalVector(AttrSet({a}));
    const int nb = domain.size(b);
    for (int va = 0; va < domain.size(a); ++va) {
      double sum = 0.0;
      for (int vb = 0; vb < nb; ++vb) sum += joint[va * nb + vb];
      EXPECT_NEAR(sum, single[va], 1e-7);
    }
  }
}

TEST_P(RandomModelTest, GeneratedDataTracksModelOneWays) {
  Domain domain;
  MarkovRandomField model = MakeRandomModel(GetParam(), &domain);
  Rng rng(GetParam().seed + 99);
  const int64_t n = 4000;
  Dataset synth = GenerateSyntheticData(model, n, rng);
  for (int a = 0; a < domain.num_attributes(); ++a) {
    std::vector<double> model_m = model.MarginalVector(AttrSet({a}));
    // Rescale the model marginal (total 1000) to n records.
    for (double& v : model_m) v *= static_cast<double>(n) / 1000.0;
    std::vector<double> synth_m = ComputeMarginal(synth, AttrSet({a}));
    // Randomized rounding at the root is near-exact; downstream attributes
    // accumulate conditional rounding error but stay close.
    EXPECT_LT(L1Distance(model_m, synth_m), 0.05 * n)
        << "attribute " << a << " drifted, seed " << GetParam().seed;
  }
}

TEST_P(RandomModelTest, EstimationReproducesExactMeasurements) {
  // Measure the model's own clique marginals noiselessly; refitting from
  // scratch must recover them (maximum-likelihood consistency).
  Domain domain;
  MarkovRandomField model = MakeRandomModel(GetParam(), &domain);
  std::vector<Measurement> ms;
  for (int c = 0; c < model.num_cliques(); ++c) {
    const AttrSet& clique = model.tree().cliques[c];
    ms.push_back({clique, model.MarginalVector(clique), 0.5});
  }
  EstimationOptions options;
  options.max_iters = 1500;
  MarkovRandomField refit = EstimateMrf(domain, ms, model.total(), options);
  for (const Measurement& m : ms) {
    EXPECT_LT(L1Distance(refit.MarginalVector(m.attrs), m.values),
              0.01 * model.total())
        << "clique " << m.attrs.ToString() << " not recovered, seed "
        << GetParam().seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Structures, RandomModelTest,
    ::testing::Values(
        RandomModelCase{1, 3, 3, 2, 2},   // small chain-ish
        RandomModelCase{2, 4, 3, 3, 2},   // pairs
        RandomModelCase{3, 4, 4, 2, 3},   // triples
        RandomModelCase{4, 5, 3, 4, 2},   // denser pairs
        RandomModelCase{5, 5, 2, 3, 3},   // binary triples
        RandomModelCase{6, 4, 3, 1, 1},   // nearly independent
        RandomModelCase{7, 6, 2, 5, 2},   // six binary attrs
        RandomModelCase{8, 4, 5, 2, 2}),  // larger domains
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// End-to-end: the full pipeline on random Bayesian-network data with exact
// measurements of a spanning set recovers the data distribution.
TEST(EndToEndModelTest, ExactChainMeasurementsRecoverChainData) {
  Rng rng(42);
  Domain domain = Domain::WithSizes({3, 3, 3, 3});
  Dataset data = SampleRandomBayesNet(domain, 8000, 1, 0.4, rng);
  std::vector<Measurement> ms;
  for (int a = 0; a + 1 < 4; ++a) {
    AttrSet r({a, a + 1});
    ms.push_back({r, ComputeMarginal(data, r), 0.5});
  }
  EstimationOptions options;
  options.max_iters = 1500;
  MarkovRandomField model = EstimateMrf(
      domain, ms, static_cast<double>(data.num_records()), options);
  Rng gen_rng(43);
  Dataset synth = GenerateSyntheticData(model, data.num_records(), gen_rng);
  // The chain model captures the chain-generated data: all pairwise
  // marginals (including unmeasured non-adjacent ones) should be close.
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      AttrSet r({a, b});
      double err = L1Distance(ComputeMarginal(data, r),
                              ComputeMarginal(synth, r));
      // Measured (adjacent) pairs are fit directly; unmeasured pairs are
      // implied through conditional independence and additionally carry the
      // data's finite-sample deviation from that independence.
      double tolerance =
          (b == a + 1) ? 0.12 * data.num_records()
                       : 0.25 * data.num_records();
      EXPECT_LT(err, tolerance) << "pair " << r.ToString();
    }
  }
}

}  // namespace
}  // namespace aim
