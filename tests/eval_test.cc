#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "data/simulators.h"
#include "eval/error.h"
#include "eval/experiment.h"
#include "marginal/marginal.h"
#include "mechanisms/independent.h"
#include "util/rng.h"

namespace aim {
namespace {

Dataset SmallData() {
  Rng rng(1);
  return SampleRandomBayesNet(Domain::WithSizes({2, 3, 2}), 500, 1, 0.5, rng);
}

TEST(ErrorTest, IdenticalDatasetsHaveZeroError) {
  Dataset data = SmallData();
  Workload workload = AllKWayWorkload(data.domain(), 2);
  EXPECT_DOUBLE_EQ(WorkloadError(data, data, workload), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedWorkloadError(data, data, workload), 0.0);
}

TEST(ErrorTest, DisjointDatasetsHaveMaximalError) {
  // All records at value 0 vs all at value 1: the 1-way marginal L1 gap is
  // 2N, so Definition-2 error is 2.
  Domain domain = Domain::WithSizes({2});
  Dataset a(domain), b(domain);
  for (int i = 0; i < 100; ++i) {
    a.AppendRecord({0});
    b.AppendRecord({1});
  }
  Workload workload;
  workload.Add(AttrSet({0}));
  EXPECT_DOUBLE_EQ(WorkloadError(a, b, workload), 2.0);
}

TEST(ErrorTest, WeightsScaleContributions) {
  Domain domain = Domain::WithSizes({2, 2});
  Dataset a(domain), b(domain);
  for (int i = 0; i < 10; ++i) {
    a.AppendRecord({0, 0});
    b.AppendRecord({1, 0});
  }
  Workload unit;
  unit.Add(AttrSet({0}), 1.0);
  unit.Add(AttrSet({1}), 1.0);
  Workload weighted;
  weighted.Add(AttrSet({0}), 2.0);
  weighted.Add(AttrSet({1}), 2.0);
  EXPECT_DOUBLE_EQ(WorkloadError(a, b, weighted),
                   2.0 * WorkloadError(a, b, unit));
}

TEST(ErrorTest, NormalizedHandlesDifferentSizes) {
  // A half-size resample with identical proportions has zero normalized
  // error but large raw Definition-2 error.
  Domain domain = Domain::WithSizes({2});
  Dataset full(domain), half(domain);
  for (int i = 0; i < 100; ++i) full.AppendRecord({i % 2});
  for (int i = 0; i < 50; ++i) half.AppendRecord({i % 2});
  Workload workload;
  workload.Add(AttrSet({0}));
  EXPECT_NEAR(NormalizedWorkloadError(full, half, workload), 0.0, 1e-9);
  EXPECT_GT(WorkloadError(full, half, workload), 0.1);
}

TEST(ErrorTest, AnswersPathMatchesExactAnswers) {
  Dataset data = SmallData();
  Workload workload = AllKWayWorkload(data.domain(), 2);
  std::vector<std::vector<double>> answers;
  for (const auto& q : workload.queries()) {
    answers.push_back(ComputeMarginal(data, q.attrs));
  }
  EXPECT_DOUBLE_EQ(WorkloadErrorFromAnswers(data, answers, workload), 0.0);
}

TEST(ErrorTest, CachedTrueMarginalsAreBitwiseIdenticalToRecompute) {
  Dataset data = SmallData();
  Rng rng(4);
  Dataset synthetic =
      SampleRandomBayesNet(data.domain(), 300, 1, 0.2, rng);
  Workload workload = AllKWayWorkload(data.domain(), 2);

  WorkloadMarginalCache raw_cache(data, workload);
  EXPECT_EQ(raw_cache.num_queries(), workload.num_queries());
  for (int i = 0; i < workload.num_queries(); ++i) {
    EXPECT_EQ(raw_cache.marginal(i),
              ComputeMarginal(data, workload.query(i).attrs));
  }
  // Exact (==) equality: the cached evaluation must be bitwise identical
  // to the recompute path, not just close.
  EXPECT_EQ(WorkloadError(data, synthetic, workload),
            WorkloadError(data, synthetic, workload, &raw_cache));

  const double data_w = 1.0 / static_cast<double>(data.num_records());
  WorkloadMarginalCache normalized_cache(data, workload, data_w);
  EXPECT_EQ(NormalizedWorkloadError(data, synthetic, workload),
            NormalizedWorkloadError(data, synthetic, workload,
                                    &normalized_cache));

  std::vector<std::vector<double>> answers;
  for (const auto& q : workload.queries()) {
    answers.push_back(ComputeMarginal(synthetic, q.attrs));
  }
  EXPECT_EQ(WorkloadErrorFromAnswers(data, answers, workload),
            WorkloadErrorFromAnswers(data, answers, workload, &raw_cache));
}

TEST(ExperimentTest, EpsilonGrids) {
  auto grid = PaperEpsilonGrid();
  ASSERT_EQ(grid.size(), 9u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.01);
  EXPECT_DOUBLE_EQ(grid.back(), 100.0);
  for (size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
  EXPECT_EQ(SmallEpsilonGrid().size(), 3u);
}

TEST(ExperimentTest, RunTrialsIsDeterministic) {
  Dataset data = SmallData();
  Workload workload = AllKWayWorkload(data.domain(), 2);
  IndependentMechanism mechanism;
  TrialStats a = RunTrials(mechanism, data, workload, 1.0, 1e-9, 3, 7);
  TrialStats b = RunTrials(mechanism, data, workload, 1.0, 1e-9, 3, 7);
  EXPECT_EQ(a.values, b.values);
  EXPECT_LE(a.min, a.mean);
  EXPECT_LE(a.mean, a.max);
}

TEST(ExperimentTest, TrialsVaryAcrossSeeds) {
  Dataset data = SmallData();
  Workload workload = AllKWayWorkload(data.domain(), 2);
  IndependentMechanism mechanism;
  TrialStats a = RunTrials(mechanism, data, workload, 1.0, 1e-9, 2, 7);
  TrialStats b = RunTrials(mechanism, data, workload, 1.0, 1e-9, 2, 8);
  EXPECT_NE(a.values, b.values);
}

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22.5"});
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream out;
  table.Print(out, /*csv=*/true);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(FormatGTest, Compact) {
  EXPECT_EQ(FormatG(0.0316), "0.0316");
  EXPECT_EQ(FormatG(100.0), "100");
}

}  // namespace
}  // namespace aim
