// Tests for src/robust/: deterministic fault injection, crash-safe
// snapshots, resume identity, deadline degradation, and trial isolation.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/simulators.h"
#include "dp/accountant.h"
#include "eval/experiment.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "mechanisms/independent.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "pgm/estimation.h"
#include "robust/fault.h"
#include "robust/snapshot.h"
#include "util/rng.h"

namespace aim {
namespace {

// --------------------------------------------------------- fixtures ----

const Dataset& TestData() {
  static const Dataset* data = [] {
    Rng rng(4242);
    Domain domain = Domain::WithSizes({2, 3, 4, 3});
    return new Dataset(SampleRandomBayesNet(domain, 900, 2, 0.3, rng));
  }();
  return *data;
}

Workload TestWorkload() { return AllKWayWorkload(TestData().domain(), 2); }

AimOptions FastAimOptions() {
  AimOptions o;
  o.max_size_mb = 4.0;
  o.round_estimation.max_iters = 30;
  o.final_estimation.max_iters = 60;
  o.record_candidates = false;
  return o;
}

MechanismResult RunAim(const AimOptions& options, double rho,
                       uint64_t seed) {
  AimMechanism mechanism(options);
  Rng rng(seed);
  return mechanism.Run(TestData(), TestWorkload(), rho, rng);
}

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void ExpectBitwiseEqualSynthetic(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_records(), b.num_records());
  ASSERT_EQ(a.domain().num_attributes(), b.domain().num_attributes());
  for (int64_t row = 0; row < a.num_records(); ++row) {
    for (int attr = 0; attr < a.domain().num_attributes(); ++attr) {
      ASSERT_EQ(a.value(row, attr), b.value(row, attr))
          << "synthetic datasets differ at row " << row << ", attribute "
          << attr;
    }
  }
}

void ExpectIdenticalResults(const MechanismResult& a,
                            const MechanismResult& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(Bits(a.rho_used), Bits(b.rho_used));
  EXPECT_EQ(Bits(a.total_estimate), Bits(b.total_estimate));
  EXPECT_EQ(a.log.measurements.size(), b.log.measurements.size());
  for (size_t i = 0; i < a.log.measurements.size(); ++i) {
    const Measurement& ma = a.log.measurements[i];
    const Measurement& mb = b.log.measurements[i];
    EXPECT_EQ(ma.attrs, mb.attrs);
    EXPECT_EQ(Bits(ma.sigma), Bits(mb.sigma));
    ASSERT_EQ(ma.values.size(), mb.values.size());
    for (size_t j = 0; j < ma.values.size(); ++j) {
      ASSERT_EQ(Bits(ma.values[j]), Bits(mb.values[j]))
          << "measurement " << i << " value " << j;
    }
  }
  ExpectBitwiseEqualSynthetic(a.synthetic, b.synthetic);
}

// The FNV-1a the snapshot format documents; used to re-seal a deliberately
// tampered payload so tests can reach the checks behind the checksum.
uint64_t TestFnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string Reseal(const std::string& payload) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(TestFnv1a(payload)));
  return payload + "checksum " + buffer + "\n";
}

AimSnapshot SampleSnapshot() {
  AimSnapshot snapshot;
  snapshot.fingerprint = 0xdeadbeefcafef00dULL;
  snapshot.rho_budget = 0.25;
  snapshot.rho_spent = 0.125;
  snapshot.round = 3;
  snapshot.init_measurements = 2;
  snapshot.sigma = 1.0 / 3.0;
  snapshot.epsilon = 0.07;
  Rng rng(99);
  (void)rng.Gaussian();  // populate the Box-Muller spare
  snapshot.rng = rng.SaveState();
  // Awkward doubles that must round-trip bit-exactly through the text
  // format: denormal, negative zero, non-terminating binary fraction, and
  // a near-overflow magnitude.
  Measurement init_a;
  init_a.attrs = AttrSet(std::vector<int>{0});
  init_a.sigma = 0.5;
  init_a.values = {5e-324, -0.0, 1.0 / 3.0, 1.7e308};
  Measurement init_b;
  init_b.attrs = AttrSet(std::vector<int>{1});
  init_b.sigma = 1.25;
  init_b.values = {-17.5, 0.1, 2.0};
  Measurement round_m;
  round_m.attrs = AttrSet(std::vector<int>{0, 1});
  round_m.sigma = 2.5;
  round_m.values = {1.0, -2.0, 3.0, 4.5};
  snapshot.measurements = {init_a, init_b, round_m};
  RoundInfo round;
  round.selected = AttrSet(std::vector<int>{0, 1});
  round.sigma = 2.5;
  round.epsilon = 0.07;
  round.estimated_error_on_selected = 12.5;
  round.sensitivity = 1.0;
  round.selected_candidate = 1;
  CandidateInfo c0;
  c0.attrs = AttrSet(std::vector<int>{0, 1});
  c0.weight = 1.5;
  c0.cells = 6;
  CandidateInfo c1;
  c1.attrs = AttrSet(std::vector<int>{1, 2});
  c1.weight = 0.25;
  c1.cells = 12;
  round.candidates = {c0, c1};
  snapshot.rounds = {round};
  return snapshot;
}

// ----------------------------------------------------- RNG state ----

TEST(RngStateTest, SaveRestoreReproducesTheStream) {
  Rng rng(123);
  for (int i = 0; i < 10; ++i) (void)rng.NextUint64();
  RngState saved = rng.SaveState();
  std::vector<uint64_t> expected;
  for (int i = 0; i < 20; ++i) expected.push_back(rng.NextUint64());

  Rng other(777);  // different state entirely
  other.RestoreState(saved);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(other.NextUint64(), expected[static_cast<size_t>(i)]) << i;
  }
}

TEST(RngStateTest, CapturesTheGaussianSpare) {
  Rng rng(5);
  (void)rng.Gaussian();  // Box-Muller leaves a cached spare behind
  RngState saved = rng.SaveState();
  std::vector<double> expected;
  for (int i = 0; i < 8; ++i) expected.push_back(rng.Gaussian());

  Rng other(6);
  other.RestoreState(saved);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(Bits(other.Gaussian()),
              Bits(expected[static_cast<size_t>(i)]))
        << i;
  }
}

// ----------------------------------------------- snapshot format ----

TEST(SnapshotTest, SerializeParseRoundTripIsBitExact) {
  AimSnapshot snapshot = SampleSnapshot();
  StatusOr<AimSnapshot> parsed =
      ParseSnapshot(SerializeSnapshot(snapshot));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->fingerprint, snapshot.fingerprint);
  EXPECT_EQ(Bits(parsed->rho_budget), Bits(snapshot.rho_budget));
  EXPECT_EQ(Bits(parsed->rho_spent), Bits(snapshot.rho_spent));
  EXPECT_EQ(parsed->round, snapshot.round);
  EXPECT_EQ(parsed->init_measurements, snapshot.init_measurements);
  EXPECT_EQ(Bits(parsed->sigma), Bits(snapshot.sigma));
  EXPECT_EQ(Bits(parsed->epsilon), Bits(snapshot.epsilon));
  EXPECT_TRUE(parsed->rng == snapshot.rng);

  ASSERT_EQ(parsed->measurements.size(), snapshot.measurements.size());
  for (size_t i = 0; i < snapshot.measurements.size(); ++i) {
    const Measurement& want = snapshot.measurements[i];
    const Measurement& got = parsed->measurements[i];
    EXPECT_EQ(got.attrs, want.attrs);
    EXPECT_EQ(Bits(got.sigma), Bits(want.sigma));
    ASSERT_EQ(got.values.size(), want.values.size());
    for (size_t j = 0; j < want.values.size(); ++j) {
      EXPECT_EQ(Bits(got.values[j]), Bits(want.values[j]))
          << "measurement " << i << " value " << j;
    }
  }
  ASSERT_EQ(parsed->rounds.size(), snapshot.rounds.size());
  const RoundInfo& want = snapshot.rounds[0];
  const RoundInfo& got = parsed->rounds[0];
  EXPECT_EQ(got.selected, want.selected);
  EXPECT_EQ(Bits(got.sigma), Bits(want.sigma));
  EXPECT_EQ(Bits(got.epsilon), Bits(want.epsilon));
  EXPECT_EQ(Bits(got.estimated_error_on_selected),
            Bits(want.estimated_error_on_selected));
  EXPECT_EQ(Bits(got.sensitivity), Bits(want.sensitivity));
  EXPECT_EQ(got.selected_candidate, want.selected_candidate);
  ASSERT_EQ(got.candidates.size(), want.candidates.size());
  for (size_t i = 0; i < want.candidates.size(); ++i) {
    EXPECT_EQ(got.candidates[i].attrs, want.candidates[i].attrs);
    EXPECT_EQ(Bits(got.candidates[i].weight),
              Bits(want.candidates[i].weight));
    EXPECT_EQ(got.candidates[i].cells, want.candidates[i].cells);
  }
}

TEST(SnapshotTest, RejectsBitFlipsTruncationAndMissingChecksum) {
  std::string serialized = SerializeSnapshot(SampleSnapshot());

  std::string flipped = serialized;
  flipped[serialized.size() / 2] ^= 0x01;
  EXPECT_FALSE(ParseSnapshot(flipped).ok());

  std::string truncated = serialized.substr(0, serialized.size() / 2);
  EXPECT_FALSE(ParseSnapshot(truncated).ok());

  EXPECT_FALSE(ParseSnapshot("AIM_SNAPSHOT v1\n").ok());
  EXPECT_FALSE(ParseSnapshot("").ok());
}

TEST(SnapshotTest, RejectsUnsupportedVersionEvenWithValidChecksum) {
  std::string serialized = SerializeSnapshot(SampleSnapshot());
  std::string payload =
      serialized.substr(0, serialized.rfind("checksum "));
  size_t version = payload.find("v1");
  ASSERT_NE(version, std::string::npos);
  payload.replace(version, 2, "v9");
  StatusOr<AimSnapshot> parsed = ParseSnapshot(Reseal(payload));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unsupported version"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(SnapshotTest, RejectsTamperedFieldsBehindAFreshChecksum) {
  std::string serialized = SerializeSnapshot(SampleSnapshot());
  std::string payload =
      serialized.substr(0, serialized.rfind("checksum "));
  size_t round = payload.find("round 3");
  ASSERT_NE(round, std::string::npos);
  payload.replace(round, 7, "round x");
  EXPECT_FALSE(ParseSnapshot(Reseal(payload)).ok());
}

TEST(SnapshotTest, WriteReadRoundTripsThroughTheFilesystem) {
  const std::string path = ::testing::TempDir() + "/snapshot_roundtrip.bin";
  AimSnapshot snapshot = SampleSnapshot();
  ASSERT_TRUE(WriteSnapshot(snapshot, path).ok());
  StatusOr<AimSnapshot> read = ReadSnapshot(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->fingerprint, snapshot.fingerprint);
  EXPECT_EQ(read->round, snapshot.round);
  EXPECT_EQ(read->measurements.size(), snapshot.measurements.size());
}

TEST(SnapshotTest, ReadMissingFileIsNotFound) {
  StatusOr<AimSnapshot> read =
      ReadSnapshot(::testing::TempDir() + "/no_such_snapshot");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, InjectedWriteFailurePreservesThePreviousSnapshot) {
  const std::string path = ::testing::TempDir() + "/snapshot_atomic.bin";
  AimSnapshot first = SampleSnapshot();
  first.round = 3;
  ASSERT_TRUE(WriteSnapshot(first, path).ok());

  AimSnapshot second = SampleSnapshot();
  second.round = 4;
  {
    ScopedFaults faults("snapshot_write:n=1");
    Status status = WriteSnapshot(second, path);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(FaultHitCount("snapshot_write"), 1);
  }

  StatusOr<AimSnapshot> read = ReadSnapshot(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->round, 3);  // the old snapshot survived intact
}

// ------------------------------------------------ validate gate ----

TEST(SnapshotTest, ValidateRejectsMismatchesAndOverspend) {
  AimSnapshot snapshot = SampleSnapshot();
  const uint64_t fp = snapshot.fingerprint;
  const double budget = snapshot.rho_budget;

  EXPECT_TRUE(ValidateSnapshot(snapshot, fp, budget).ok());
  EXPECT_FALSE(ValidateSnapshot(snapshot, fp + 1, budget).ok());
  EXPECT_FALSE(ValidateSnapshot(snapshot, fp, budget * 2.0).ok());

  AimSnapshot overspent = snapshot;
  overspent.rho_spent = budget * 1.1;
  EXPECT_FALSE(ValidateSnapshot(overspent, fp, budget).ok());
  overspent.rho_spent = -1.0;
  EXPECT_FALSE(ValidateSnapshot(overspent, fp, budget).ok());

  // Exactly-at-budget (modulo accumulation rounding) must be accepted: a
  // checkpoint taken after the last round legitimately sits there.
  AimSnapshot boundary = snapshot;
  boundary.rho_spent = budget * (1.0 + 1e-10);
  EXPECT_TRUE(ValidateSnapshot(boundary, fp, budget).ok());

  AimSnapshot inconsistent = snapshot;
  inconsistent.rounds.clear();  // 3 measurements != 2 init + 0 rounds
  EXPECT_FALSE(ValidateSnapshot(inconsistent, fp, budget).ok());

  AimSnapshot bad_annealing = snapshot;
  bad_annealing.sigma = 0.0;
  EXPECT_FALSE(ValidateSnapshot(bad_annealing, fp, budget).ok());
}

TEST(FingerprintTest, SensitiveToOptionsWorkloadAndBudget) {
  const Domain& domain = TestData().domain();
  Workload workload = TestWorkload();
  AimOptions options = FastAimOptions();
  const double rho = 0.1;

  const uint64_t base = AimRunFingerprint(domain, workload, options, rho);
  EXPECT_EQ(base, AimRunFingerprint(domain, workload, options, rho));

  AimOptions different = options;
  different.max_size_mb = 8.0;
  EXPECT_NE(base, AimRunFingerprint(domain, workload, different, rho));
  EXPECT_NE(base, AimRunFingerprint(domain, workload, options, rho * 2.0));
  Workload smaller = AllKWayWorkload(domain, 1);
  EXPECT_NE(base, AimRunFingerprint(domain, smaller, options, rho));

  // Checkpoint plumbing must NOT change the fingerprint: a resumed run
  // points at different paths than the run that wrote the snapshot.
  AimOptions replumbed = options;
  replumbed.checkpoint_path = "/tmp/elsewhere.snap";
  replumbed.resume_path = "/tmp/old.snap";
  replumbed.deadline_seconds = 123.0;
  EXPECT_EQ(base, AimRunFingerprint(domain, workload, replumbed, rho));
}

// ------------------------------------------------ fault framework ----

TEST(FaultTest, DisarmedSitesNeverFireOrCount) {
  DisarmFaults();
  EXPECT_FALSE(FaultsArmed());
  EXPECT_FALSE(ShouldInjectFault("snapshot_write"));
  EXPECT_FALSE(ShouldInjectFault("snapshot_write", 7));
  EXPECT_TRUE(FaultStatus("csv_read").ok());
  EXPECT_NO_THROW(MaybeThrowFault("aim_round"));
  EXPECT_EQ(FaultHitCount("snapshot_write"), 0);
}

TEST(FaultTest, SpecParsing) {
  EXPECT_TRUE(ArmFaults("csv_read:n=2").ok());
  EXPECT_TRUE(ArmFaults("csv_read:after=0;snapshot_write:p=0.5,seed=9").ok());
  EXPECT_TRUE(ArmFaults("").ok());  // empty spec disarms
  EXPECT_FALSE(FaultsArmed());

  EXPECT_FALSE(ArmFaults("no_colon").ok());
  EXPECT_FALSE(ArmFaults(":n=1").ok());
  EXPECT_FALSE(ArmFaults("x:").ok());
  EXPECT_FALSE(ArmFaults("x:q=1").ok());
  EXPECT_FALSE(ArmFaults("x:n=-1").ok());
  EXPECT_FALSE(ArmFaults("x:p=1.5").ok());
  EXPECT_FALSE(ArmFaults("x:seed=3").ok());  // seed without a mode
  DisarmFaults();
}

TEST(FaultTest, NthHitAndAfterSemantics) {
  {
    ScopedFaults faults("pt:n=3");
    EXPECT_FALSE(ShouldInjectFault("pt"));
    EXPECT_FALSE(ShouldInjectFault("pt"));
    EXPECT_TRUE(ShouldInjectFault("pt"));
    EXPECT_FALSE(ShouldInjectFault("pt"));
    EXPECT_EQ(FaultHitCount("pt"), 4);
    EXPECT_FALSE(ShouldInjectFault("other_point"));
  }
  {
    ScopedFaults faults("pt:after=2");
    EXPECT_FALSE(ShouldInjectFault("pt"));
    EXPECT_FALSE(ShouldInjectFault("pt"));
    EXPECT_TRUE(ShouldInjectFault("pt"));
    EXPECT_TRUE(ShouldInjectFault("pt"));
  }
}

TEST(FaultTest, KeyedDecisionsIgnoreCallOrder) {
  ScopedFaults faults("pt:n=3");
  // Key k is treated as hit k+1, independent of when the call happens.
  EXPECT_TRUE(ShouldInjectFault("pt", 2));
  EXPECT_FALSE(ShouldInjectFault("pt", 0));
  EXPECT_FALSE(ShouldInjectFault("pt", 5));
  EXPECT_TRUE(ShouldInjectFault("pt", 2));
}

TEST(FaultTest, ProbabilityRulesAreDeterministicGivenSeed) {
  std::vector<bool> first;
  {
    ScopedFaults faults("pt:p=0.5,seed=9");
    for (uint64_t k = 0; k < 64; ++k) {
      first.push_back(ShouldInjectFault("pt", k));
    }
  }
  {
    ScopedFaults faults("pt:p=0.5,seed=9");
    for (uint64_t k = 0; k < 64; ++k) {
      EXPECT_EQ(ShouldInjectFault("pt", k), first[static_cast<size_t>(k)])
          << k;
    }
  }
  {
    ScopedFaults always("pt:p=1");
    EXPECT_TRUE(ShouldInjectFault("pt", 0));
  }
  {
    ScopedFaults never("pt:p=0");
    EXPECT_FALSE(ShouldInjectFault("pt", 0));
  }
}

TEST(FaultTest, CsvReadFaultFiresThroughTheStatusChannel) {
  ScopedFaults faults("csv_read:n=1");
  StatusOr<RawTable> table =
      ReadCsv(::testing::TempDir() + "/does_not_matter.csv");
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("fault injected: csv_read"),
            std::string::npos)
      << table.status().ToString();
}

TEST(FaultTest, CorePointsAreRegistered) {
  std::vector<std::string> points = RegisteredFaultPoints();
  auto has = [&](const char* name) {
    for (const std::string& p : points) {
      if (p == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("csv_read"));
  EXPECT_TRUE(has("snapshot_write"));
  EXPECT_TRUE(has("estimation_step"));
  EXPECT_TRUE(has("trial_run"));
  // "aim_round" registers from aim.cc, linked into this binary.
  EXPECT_TRUE(has("aim_round"));
}

// ----------------------------------------------- trial isolation ----

TEST(TrialIsolationTest, InjectedTrialFailureOnlyLosesThatTrial) {
  ScopedFaults faults("trial_run:n=2");  // key 1 => trial index 1
  IndependentMechanism mechanism;
  TrialStats stats = RunTrials(mechanism, TestData(), TestWorkload(),
                               /*epsilon=*/1.0, /*delta=*/1e-9,
                               /*trials=*/4, /*seed=*/11);
  ASSERT_EQ(stats.failures.size(), 1u);
  EXPECT_EQ(stats.failures[0].trial, 1);
  EXPECT_NE(stats.failures[0].message.find("trial_run"), std::string::npos);
  EXPECT_EQ(stats.values.size(), 3u);
  EXPECT_GT(stats.mean, 0.0);
}

TEST(TrialIsolationTest, SurvivingTrialsMatchAFaultFreeRun) {
  IndependentMechanism mechanism;
  TrialStats clean = RunTrials(mechanism, TestData(), TestWorkload(), 1.0,
                               1e-9, 4, 11);
  ScopedFaults faults("trial_run:n=3");  // key 2 => trial index 2
  TrialStats faulted = RunTrials(mechanism, TestData(), TestWorkload(), 1.0,
                                 1e-9, 4, 11);
  ASSERT_EQ(clean.values.size(), 4u);
  ASSERT_EQ(faulted.values.size(), 3u);
  // Trials draw from per-trial generators, so survivors are unchanged.
  EXPECT_EQ(Bits(faulted.values[0]), Bits(clean.values[0]));
  EXPECT_EQ(Bits(faulted.values[1]), Bits(clean.values[1]));
  EXPECT_EQ(Bits(faulted.values[2]), Bits(clean.values[3]));
}

TEST(TrialIsolationTest, EstimationFaultIsCaughtPerTrial) {
  ScopedFaults faults("estimation_step:n=1");
  AimMechanism mechanism(FastAimOptions());
  TrialStats stats = RunTrials(mechanism, TestData(), TestWorkload(), 1.0,
                               1e-9, /*trials=*/1, /*seed=*/3);
  ASSERT_EQ(stats.failures.size(), 1u);
  EXPECT_NE(stats.failures[0].message.find("estimation_step"),
            std::string::npos);
  EXPECT_TRUE(stats.values.empty());
  EXPECT_EQ(stats.mean, 0.0);
}

// -------------------------------------------------- resume identity ----

TEST(ResumeTest, ResumeMatchesUninterruptedAtEveryThreadCount) {
  const double rho = CdpRho(1.0, 1e-9);
  const uint64_t seed = 31;
  std::optional<MechanismResult> reference;

  for (int threads : {1, 8}) {
    SetParallelThreads(threads);
    const std::string checkpoint = ::testing::TempDir() +
                                   "/resume_identity_t" +
                                   std::to_string(threads) + ".snap";

    // Uninterrupted control run (no checkpointing at all).
    MechanismResult uninterrupted = RunAim(FastAimOptions(), rho, seed);
    ASSERT_GE(uninterrupted.rounds, 3)
        << "fixture too small for a mid-run crash";

    // Crashed run: checkpoint every round, die at the top of round 3.
    AimOptions crash_options = FastAimOptions();
    crash_options.checkpoint_path = checkpoint;
    crash_options.checkpoint_every_rounds = 1;
    bool threw = false;
    try {
      ScopedFaults faults("aim_round:n=3");
      (void)RunAim(crash_options, rho, seed);
    } catch (const FaultInjectedError& e) {
      threw = true;
      EXPECT_EQ(e.point(), "aim_round");
    }
    ASSERT_TRUE(threw);

    StatusOr<AimSnapshot> snapshot = ReadSnapshot(checkpoint);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    EXPECT_EQ(snapshot->round, 2);  // two completed rounds before the crash
    ASSERT_TRUE(ValidateSnapshot(*snapshot,
                                 AimRunFingerprint(TestData().domain(),
                                                   TestWorkload(),
                                                   crash_options, rho),
                                 rho)
                    .ok());

    // Resume and run to completion.
    AimOptions resume_options = FastAimOptions();
    resume_options.resume_path = checkpoint;
    MechanismResult resumed = RunAim(resume_options, rho, seed);
    EXPECT_EQ(resumed.resumed_from_round, 2);
    EXPECT_EQ(uninterrupted.resumed_from_round, -1);

    ExpectIdenticalResults(uninterrupted, resumed);

    // Thread-count invariance: every thread count produces the same bits.
    if (!reference.has_value()) {
      reference = std::move(uninterrupted);
    } else {
      ExpectIdenticalResults(*reference, uninterrupted);
    }
  }
  SetParallelThreads(0);
}

TEST(ResumeTest, CheckpointWriteFailuresDoNotPerturbTheRun) {
  const double rho = 0.05;
  MechanismResult plain = RunAim(FastAimOptions(), rho, 17);

  AimOptions options = FastAimOptions();
  options.checkpoint_path =
      ::testing::TempDir() + "/never_written.snap";
  MemoryTraceSink sink;
  ScopedTraceSink scoped(&sink);
  ScopedFaults faults("snapshot_write:after=0");  // every write fails
  MechanismResult checkpointed = RunAim(options, rho, 17);

  ExpectIdenticalResults(plain, checkpointed);
  std::vector<TraceEvent> warnings = sink.events_of_type("aim_warning");
  bool saw_checkpoint_failure = false;
  for (const TraceEvent& event : warnings) {
    if (event.GetString("kind") == "checkpoint_failed") {
      saw_checkpoint_failure = true;
    }
  }
  EXPECT_TRUE(saw_checkpoint_failure);
}

TEST(ResumeTest, StaleSnapshotIsRejectedByTheValidationGate) {
  const double rho = 0.05;
  const std::string checkpoint =
      ::testing::TempDir() + "/stale_config.snap";
  AimOptions options = FastAimOptions();
  options.checkpoint_path = checkpoint;
  (void)RunAim(options, rho, 23);

  StatusOr<AimSnapshot> snapshot = ReadSnapshot(checkpoint);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  AimOptions different = FastAimOptions();
  different.max_size_mb = 16.0;  // a different run configuration
  Status valid = ValidateSnapshot(
      *snapshot,
      AimRunFingerprint(TestData().domain(), TestWorkload(), different, rho),
      rho);
  ASSERT_FALSE(valid.ok());
  EXPECT_EQ(valid.code(), StatusCode::kFailedPrecondition);

  // Same options under a different budget is also a mismatch.
  EXPECT_FALSE(ValidateSnapshot(*snapshot,
                                AimRunFingerprint(TestData().domain(),
                                                  TestWorkload(), options,
                                                  rho * 2.0),
                                rho * 2.0)
                   .ok());
}

TEST(ResumeTest, LedgerReconcilesAfterResume) {
  const double rho = CdpRho(1.0, 1e-9);
  const std::string checkpoint =
      ::testing::TempDir() + "/ledger_reconcile.snap";
  AimOptions crash_options = FastAimOptions();
  crash_options.checkpoint_path = checkpoint;
  try {
    ScopedFaults faults("aim_round:n=2");
    (void)RunAim(crash_options, rho, 41);
    FAIL() << "fault did not fire";
  } catch (const FaultInjectedError&) {
  }

  StatusOr<AimSnapshot> snapshot = ReadSnapshot(checkpoint);
  ASSERT_TRUE(snapshot.ok());
  AimOptions resume_options = FastAimOptions();
  resume_options.resume_path = checkpoint;
  MechanismResult resumed = RunAim(resume_options, rho, 41);
  MechanismResult plain = RunAim(FastAimOptions(), rho, 41);

  // The resumed ledger picks up exactly where the snapshot left off and
  // lands exactly where the uninterrupted run lands.
  EXPECT_GE(resumed.rho_used, snapshot->rho_spent);
  EXPECT_NEAR(resumed.rho_used, plain.rho_used, 1e-9);
  EXPECT_LE(resumed.rho_used, rho * (1.0 + 1e-9) + 1e-12);
}

// ------------------------------------------------------- deadline ----

TEST(DeadlineTest, ExpiryDegradesGracefully) {
  AimOptions options = FastAimOptions();
  options.deadline_seconds = 1e-9;  // expires before the first round
  MemoryTraceSink sink;
  ScopedTraceSink scoped(&sink);
  const double rho = 0.1;
  MechanismResult result = RunAim(options, rho, 7);

  EXPECT_TRUE(result.deadline_expired);
  EXPECT_EQ(result.rounds, 0);
  // Initialization already spent rho and produced one-way measurements, so
  // the degraded output is a real model, not garbage.
  EXPECT_GT(result.rho_used, 0.0);
  EXPECT_LE(result.rho_used, rho * (1.0 + 1e-9) + 1e-12);
  EXPECT_GT(result.synthetic.num_records(), 0);
  EXPECT_FALSE(result.log.measurements.empty());

  bool saw_deadline_warning = false;
  for (const TraceEvent& event : sink.events_of_type("aim_warning")) {
    if (event.GetString("kind") == "deadline_expired") {
      saw_deadline_warning = true;
      EXPECT_GE(event.GetDouble("elapsed_s"),
                event.GetDouble("deadline_s"));
      EXPECT_GE(event.GetDouble("rho_remaining"), 0.0);
    }
  }
  EXPECT_TRUE(saw_deadline_warning);
}

TEST(DeadlineTest, GenerousDeadlineChangesNothing) {
  const double rho = 0.05;
  MechanismResult plain = RunAim(FastAimOptions(), rho, 29);
  AimOptions options = FastAimOptions();
  options.deadline_seconds = 3600.0;
  MechanismResult bounded = RunAim(options, rho, 29);
  EXPECT_FALSE(bounded.deadline_expired);
  ExpectIdenticalResults(plain, bounded);
}

}  // namespace
}  // namespace aim
