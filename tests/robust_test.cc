// Tests for src/robust/: deterministic fault injection, crash-safe
// snapshots, retry/backoff, checkpoint generations, the stall watchdog,
// resume identity, deadline degradation, and trial isolation.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/simulators.h"
#include "dp/accountant.h"
#include "eval/experiment.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "mechanisms/independent.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "pgm/estimation.h"
#include "robust/fault.h"
#include "robust/generations.h"
#include "robust/retry.h"
#include "robust/snapshot.h"
#include "robust/supervisor.h"
#include "util/cancel.h"
#include "util/rng.h"
#include "util/status.h"

namespace aim {
namespace {

// --------------------------------------------------------- fixtures ----

const Dataset& TestData() {
  static const Dataset* data = [] {
    Rng rng(4242);
    Domain domain = Domain::WithSizes({2, 3, 4, 3});
    return new Dataset(SampleRandomBayesNet(domain, 900, 2, 0.3, rng));
  }();
  return *data;
}

Workload TestWorkload() { return AllKWayWorkload(TestData().domain(), 2); }

AimOptions FastAimOptions() {
  AimOptions o;
  o.max_size_mb = 4.0;
  o.round_estimation.max_iters = 30;
  o.final_estimation.max_iters = 60;
  o.record_candidates = false;
  return o;
}

MechanismResult RunAim(const AimOptions& options, double rho,
                       uint64_t seed) {
  AimMechanism mechanism(options);
  Rng rng(seed);
  return mechanism.Run(TestData(), TestWorkload(), rho, rng);
}

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void ExpectBitwiseEqualSynthetic(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_records(), b.num_records());
  ASSERT_EQ(a.domain().num_attributes(), b.domain().num_attributes());
  for (int64_t row = 0; row < a.num_records(); ++row) {
    for (int attr = 0; attr < a.domain().num_attributes(); ++attr) {
      ASSERT_EQ(a.value(row, attr), b.value(row, attr))
          << "synthetic datasets differ at row " << row << ", attribute "
          << attr;
    }
  }
}

void ExpectIdenticalResults(const MechanismResult& a,
                            const MechanismResult& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(Bits(a.rho_used), Bits(b.rho_used));
  EXPECT_EQ(Bits(a.total_estimate), Bits(b.total_estimate));
  EXPECT_EQ(a.log.measurements.size(), b.log.measurements.size());
  for (size_t i = 0; i < a.log.measurements.size(); ++i) {
    const Measurement& ma = a.log.measurements[i];
    const Measurement& mb = b.log.measurements[i];
    EXPECT_EQ(ma.attrs, mb.attrs);
    EXPECT_EQ(Bits(ma.sigma), Bits(mb.sigma));
    ASSERT_EQ(ma.values.size(), mb.values.size());
    for (size_t j = 0; j < ma.values.size(); ++j) {
      ASSERT_EQ(Bits(ma.values[j]), Bits(mb.values[j]))
          << "measurement " << i << " value " << j;
    }
  }
  ExpectBitwiseEqualSynthetic(a.synthetic, b.synthetic);
}

// The FNV-1a the snapshot format documents; used to re-seal a deliberately
// tampered payload so tests can reach the checks behind the checksum.
uint64_t TestFnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string Reseal(const std::string& payload) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(TestFnv1a(payload)));
  return payload + "checksum " + buffer + "\n";
}

AimSnapshot SampleSnapshot() {
  AimSnapshot snapshot;
  snapshot.fingerprint = 0xdeadbeefcafef00dULL;
  snapshot.rho_budget = 0.25;
  snapshot.rho_spent = 0.125;
  snapshot.round = 3;
  snapshot.init_measurements = 2;
  snapshot.sigma = 1.0 / 3.0;
  snapshot.epsilon = 0.07;
  Rng rng(99);
  (void)rng.Gaussian();  // populate the Box-Muller spare
  snapshot.rng = rng.SaveState();
  // Awkward doubles that must round-trip bit-exactly through the text
  // format: denormal, negative zero, non-terminating binary fraction, and
  // a near-overflow magnitude.
  Measurement init_a;
  init_a.attrs = AttrSet(std::vector<int>{0});
  init_a.sigma = 0.5;
  init_a.values = {5e-324, -0.0, 1.0 / 3.0, 1.7e308};
  Measurement init_b;
  init_b.attrs = AttrSet(std::vector<int>{1});
  init_b.sigma = 1.25;
  init_b.values = {-17.5, 0.1, 2.0};
  Measurement round_m;
  round_m.attrs = AttrSet(std::vector<int>{0, 1});
  round_m.sigma = 2.5;
  round_m.values = {1.0, -2.0, 3.0, 4.5};
  snapshot.measurements = {init_a, init_b, round_m};
  RoundInfo round;
  round.selected = AttrSet(std::vector<int>{0, 1});
  round.sigma = 2.5;
  round.epsilon = 0.07;
  round.estimated_error_on_selected = 12.5;
  round.sensitivity = 1.0;
  round.selected_candidate = 1;
  CandidateInfo c0;
  c0.attrs = AttrSet(std::vector<int>{0, 1});
  c0.weight = 1.5;
  c0.cells = 6;
  CandidateInfo c1;
  c1.attrs = AttrSet(std::vector<int>{1, 2});
  c1.weight = 0.25;
  c1.cells = 12;
  round.candidates = {c0, c1};
  snapshot.rounds = {round};
  return snapshot;
}

// ----------------------------------------------------- RNG state ----

TEST(RngStateTest, SaveRestoreReproducesTheStream) {
  Rng rng(123);
  for (int i = 0; i < 10; ++i) (void)rng.NextUint64();
  RngState saved = rng.SaveState();
  std::vector<uint64_t> expected;
  for (int i = 0; i < 20; ++i) expected.push_back(rng.NextUint64());

  Rng other(777);  // different state entirely
  other.RestoreState(saved);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(other.NextUint64(), expected[static_cast<size_t>(i)]) << i;
  }
}

TEST(RngStateTest, CapturesTheGaussianSpare) {
  Rng rng(5);
  (void)rng.Gaussian();  // Box-Muller leaves a cached spare behind
  RngState saved = rng.SaveState();
  std::vector<double> expected;
  for (int i = 0; i < 8; ++i) expected.push_back(rng.Gaussian());

  Rng other(6);
  other.RestoreState(saved);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(Bits(other.Gaussian()),
              Bits(expected[static_cast<size_t>(i)]))
        << i;
  }
}

// ----------------------------------------------- snapshot format ----

TEST(SnapshotTest, SerializeParseRoundTripIsBitExact) {
  AimSnapshot snapshot = SampleSnapshot();
  StatusOr<AimSnapshot> parsed =
      ParseSnapshot(SerializeSnapshot(snapshot));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->fingerprint, snapshot.fingerprint);
  EXPECT_EQ(Bits(parsed->rho_budget), Bits(snapshot.rho_budget));
  EXPECT_EQ(Bits(parsed->rho_spent), Bits(snapshot.rho_spent));
  EXPECT_EQ(parsed->round, snapshot.round);
  EXPECT_EQ(parsed->init_measurements, snapshot.init_measurements);
  EXPECT_EQ(Bits(parsed->sigma), Bits(snapshot.sigma));
  EXPECT_EQ(Bits(parsed->epsilon), Bits(snapshot.epsilon));
  EXPECT_TRUE(parsed->rng == snapshot.rng);

  ASSERT_EQ(parsed->measurements.size(), snapshot.measurements.size());
  for (size_t i = 0; i < snapshot.measurements.size(); ++i) {
    const Measurement& want = snapshot.measurements[i];
    const Measurement& got = parsed->measurements[i];
    EXPECT_EQ(got.attrs, want.attrs);
    EXPECT_EQ(Bits(got.sigma), Bits(want.sigma));
    ASSERT_EQ(got.values.size(), want.values.size());
    for (size_t j = 0; j < want.values.size(); ++j) {
      EXPECT_EQ(Bits(got.values[j]), Bits(want.values[j]))
          << "measurement " << i << " value " << j;
    }
  }
  ASSERT_EQ(parsed->rounds.size(), snapshot.rounds.size());
  const RoundInfo& want = snapshot.rounds[0];
  const RoundInfo& got = parsed->rounds[0];
  EXPECT_EQ(got.selected, want.selected);
  EXPECT_EQ(Bits(got.sigma), Bits(want.sigma));
  EXPECT_EQ(Bits(got.epsilon), Bits(want.epsilon));
  EXPECT_EQ(Bits(got.estimated_error_on_selected),
            Bits(want.estimated_error_on_selected));
  EXPECT_EQ(Bits(got.sensitivity), Bits(want.sensitivity));
  EXPECT_EQ(got.selected_candidate, want.selected_candidate);
  ASSERT_EQ(got.candidates.size(), want.candidates.size());
  for (size_t i = 0; i < want.candidates.size(); ++i) {
    EXPECT_EQ(got.candidates[i].attrs, want.candidates[i].attrs);
    EXPECT_EQ(Bits(got.candidates[i].weight),
              Bits(want.candidates[i].weight));
    EXPECT_EQ(got.candidates[i].cells, want.candidates[i].cells);
  }
}

TEST(SnapshotTest, RejectsBitFlipsTruncationAndMissingChecksum) {
  std::string serialized = SerializeSnapshot(SampleSnapshot());

  std::string flipped = serialized;
  flipped[serialized.size() / 2] ^= 0x01;
  EXPECT_FALSE(ParseSnapshot(flipped).ok());

  std::string truncated = serialized.substr(0, serialized.size() / 2);
  EXPECT_FALSE(ParseSnapshot(truncated).ok());

  EXPECT_FALSE(ParseSnapshot("AIM_SNAPSHOT v1\n").ok());
  EXPECT_FALSE(ParseSnapshot("").ok());
}

TEST(SnapshotTest, RejectsUnsupportedVersionEvenWithValidChecksum) {
  std::string serialized = SerializeSnapshot(SampleSnapshot());
  std::string payload =
      serialized.substr(0, serialized.rfind("checksum "));
  size_t version = payload.find("v1");
  ASSERT_NE(version, std::string::npos);
  payload.replace(version, 2, "v9");
  StatusOr<AimSnapshot> parsed = ParseSnapshot(Reseal(payload));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unsupported version"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(SnapshotTest, RejectsTamperedFieldsBehindAFreshChecksum) {
  std::string serialized = SerializeSnapshot(SampleSnapshot());
  std::string payload =
      serialized.substr(0, serialized.rfind("checksum "));
  size_t round = payload.find("round 3");
  ASSERT_NE(round, std::string::npos);
  payload.replace(round, 7, "round x");
  EXPECT_FALSE(ParseSnapshot(Reseal(payload)).ok());
}

TEST(SnapshotTest, WriteReadRoundTripsThroughTheFilesystem) {
  const std::string path = ::testing::TempDir() + "/snapshot_roundtrip.bin";
  AimSnapshot snapshot = SampleSnapshot();
  ASSERT_TRUE(WriteSnapshot(snapshot, path).ok());
  StatusOr<AimSnapshot> read = ReadSnapshot(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->fingerprint, snapshot.fingerprint);
  EXPECT_EQ(read->round, snapshot.round);
  EXPECT_EQ(read->measurements.size(), snapshot.measurements.size());
}

TEST(SnapshotTest, ReadMissingFileIsNotFound) {
  StatusOr<AimSnapshot> read =
      ReadSnapshot(::testing::TempDir() + "/no_such_snapshot");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, InjectedWriteFailurePreservesThePreviousSnapshot) {
  const std::string path = ::testing::TempDir() + "/snapshot_atomic.bin";
  AimSnapshot first = SampleSnapshot();
  first.round = 3;
  ASSERT_TRUE(WriteSnapshot(first, path).ok());

  AimSnapshot second = SampleSnapshot();
  second.round = 4;
  {
    ScopedFaults faults("snapshot_write:n=1");
    Status status = WriteSnapshot(second, path);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(FaultHitCount("snapshot_write"), 1);
  }

  StatusOr<AimSnapshot> read = ReadSnapshot(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->round, 3);  // the old snapshot survived intact
}

// ------------------------------------------------ validate gate ----

TEST(SnapshotTest, ValidateRejectsMismatchesAndOverspend) {
  AimSnapshot snapshot = SampleSnapshot();
  const uint64_t fp = snapshot.fingerprint;
  const double budget = snapshot.rho_budget;

  EXPECT_TRUE(ValidateSnapshot(snapshot, fp, budget).ok());
  EXPECT_FALSE(ValidateSnapshot(snapshot, fp + 1, budget).ok());
  EXPECT_FALSE(ValidateSnapshot(snapshot, fp, budget * 2.0).ok());

  AimSnapshot overspent = snapshot;
  overspent.rho_spent = budget * 1.1;
  EXPECT_FALSE(ValidateSnapshot(overspent, fp, budget).ok());
  overspent.rho_spent = -1.0;
  EXPECT_FALSE(ValidateSnapshot(overspent, fp, budget).ok());

  // Exactly-at-budget (modulo accumulation rounding) must be accepted: a
  // checkpoint taken after the last round legitimately sits there.
  AimSnapshot boundary = snapshot;
  boundary.rho_spent = budget * (1.0 + 1e-10);
  EXPECT_TRUE(ValidateSnapshot(boundary, fp, budget).ok());

  AimSnapshot inconsistent = snapshot;
  inconsistent.rounds.clear();  // 3 measurements != 2 init + 0 rounds
  EXPECT_FALSE(ValidateSnapshot(inconsistent, fp, budget).ok());

  AimSnapshot bad_annealing = snapshot;
  bad_annealing.sigma = 0.0;
  EXPECT_FALSE(ValidateSnapshot(bad_annealing, fp, budget).ok());
}

TEST(FingerprintTest, SensitiveToOptionsWorkloadAndBudget) {
  const Domain& domain = TestData().domain();
  Workload workload = TestWorkload();
  AimOptions options = FastAimOptions();
  const double rho = 0.1;

  const uint64_t base = AimRunFingerprint(domain, workload, options, rho);
  EXPECT_EQ(base, AimRunFingerprint(domain, workload, options, rho));

  AimOptions different = options;
  different.max_size_mb = 8.0;
  EXPECT_NE(base, AimRunFingerprint(domain, workload, different, rho));
  EXPECT_NE(base, AimRunFingerprint(domain, workload, options, rho * 2.0));
  Workload smaller = AllKWayWorkload(domain, 1);
  EXPECT_NE(base, AimRunFingerprint(domain, smaller, options, rho));

  // Checkpoint plumbing must NOT change the fingerprint: a resumed run
  // points at different paths than the run that wrote the snapshot.
  AimOptions replumbed = options;
  replumbed.checkpoint_path = "/tmp/elsewhere.snap";
  replumbed.resume_path = "/tmp/old.snap";
  replumbed.deadline_seconds = 123.0;
  EXPECT_EQ(base, AimRunFingerprint(domain, workload, replumbed, rho));
}

// ------------------------------------------------ fault framework ----

TEST(FaultTest, DisarmedSitesNeverFireOrCount) {
  DisarmFaults();
  EXPECT_FALSE(FaultsArmed());
  EXPECT_FALSE(ShouldInjectFault("snapshot_write"));
  EXPECT_FALSE(ShouldInjectFault("snapshot_write", 7));
  EXPECT_TRUE(FaultStatus("csv_read").ok());
  EXPECT_NO_THROW(MaybeThrowFault("aim_round"));
  EXPECT_EQ(FaultHitCount("snapshot_write"), 0);
}

TEST(FaultTest, SpecParsing) {
  EXPECT_TRUE(ArmFaults("csv_read:n=2").ok());
  EXPECT_TRUE(ArmFaults("csv_read:after=0;snapshot_write:p=0.5,seed=9").ok());
  EXPECT_TRUE(ArmFaults("").ok());  // empty spec disarms
  EXPECT_FALSE(FaultsArmed());

  EXPECT_FALSE(ArmFaults("no_colon").ok());
  EXPECT_FALSE(ArmFaults(":n=1").ok());
  EXPECT_FALSE(ArmFaults("x:").ok());
  EXPECT_FALSE(ArmFaults("x:q=1").ok());
  EXPECT_FALSE(ArmFaults("x:n=-1").ok());
  EXPECT_FALSE(ArmFaults("x:p=1.5").ok());
  EXPECT_FALSE(ArmFaults("x:seed=3").ok());  // seed without a mode
  DisarmFaults();
}

TEST(FaultTest, NthHitAndAfterSemantics) {
  {
    ScopedFaults faults("pt:n=3");
    EXPECT_FALSE(ShouldInjectFault("pt"));
    EXPECT_FALSE(ShouldInjectFault("pt"));
    EXPECT_TRUE(ShouldInjectFault("pt"));
    EXPECT_FALSE(ShouldInjectFault("pt"));
    EXPECT_EQ(FaultHitCount("pt"), 4);
    EXPECT_FALSE(ShouldInjectFault("other_point"));
  }
  {
    ScopedFaults faults("pt:after=2");
    EXPECT_FALSE(ShouldInjectFault("pt"));
    EXPECT_FALSE(ShouldInjectFault("pt"));
    EXPECT_TRUE(ShouldInjectFault("pt"));
    EXPECT_TRUE(ShouldInjectFault("pt"));
  }
}

TEST(FaultTest, KeyedDecisionsIgnoreCallOrder) {
  ScopedFaults faults("pt:n=3");
  // Key k is treated as hit k+1, independent of when the call happens.
  EXPECT_TRUE(ShouldInjectFault("pt", 2));
  EXPECT_FALSE(ShouldInjectFault("pt", 0));
  EXPECT_FALSE(ShouldInjectFault("pt", 5));
  EXPECT_TRUE(ShouldInjectFault("pt", 2));
}

TEST(FaultTest, ProbabilityRulesAreDeterministicGivenSeed) {
  std::vector<bool> first;
  {
    ScopedFaults faults("pt:p=0.5,seed=9");
    for (uint64_t k = 0; k < 64; ++k) {
      first.push_back(ShouldInjectFault("pt", k));
    }
  }
  {
    ScopedFaults faults("pt:p=0.5,seed=9");
    for (uint64_t k = 0; k < 64; ++k) {
      EXPECT_EQ(ShouldInjectFault("pt", k), first[static_cast<size_t>(k)])
          << k;
    }
  }
  {
    ScopedFaults always("pt:p=1");
    EXPECT_TRUE(ShouldInjectFault("pt", 0));
  }
  {
    ScopedFaults never("pt:p=0");
    EXPECT_FALSE(ShouldInjectFault("pt", 0));
  }
}

TEST(FaultTest, CsvReadFaultFiresThroughTheStatusChannel) {
  ScopedFaults faults("csv_read:n=1");
  StatusOr<RawTable> table =
      ReadCsv(::testing::TempDir() + "/does_not_matter.csv");
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("fault injected: csv_read"),
            std::string::npos)
      << table.status().ToString();
}

TEST(FaultTest, CorePointsAreRegistered) {
  std::vector<std::string> points = RegisteredFaultPoints();
  auto has = [&](const char* name) {
    for (const std::string& p : points) {
      if (p == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("csv_read"));
  EXPECT_TRUE(has("snapshot_write"));
  EXPECT_TRUE(has("estimation_step"));
  EXPECT_TRUE(has("trial_run"));
  // "aim_round" registers from aim.cc, linked into this binary.
  EXPECT_TRUE(has("aim_round"));
}

// ----------------------------------------------- trial isolation ----

TEST(TrialIsolationTest, InjectedTrialFailureOnlyLosesThatTrial) {
  ScopedFaults faults("trial_run:n=2");  // key 1 => trial index 1
  IndependentMechanism mechanism;
  TrialStats stats = RunTrials(mechanism, TestData(), TestWorkload(),
                               /*epsilon=*/1.0, /*delta=*/1e-9,
                               /*trials=*/4, /*seed=*/11);
  ASSERT_EQ(stats.failures.size(), 1u);
  EXPECT_EQ(stats.failures[0].trial, 1);
  EXPECT_NE(stats.failures[0].message.find("trial_run"), std::string::npos);
  EXPECT_EQ(stats.values.size(), 3u);
  EXPECT_GT(stats.mean, 0.0);
}

TEST(TrialIsolationTest, SurvivingTrialsMatchAFaultFreeRun) {
  IndependentMechanism mechanism;
  TrialStats clean = RunTrials(mechanism, TestData(), TestWorkload(), 1.0,
                               1e-9, 4, 11);
  ScopedFaults faults("trial_run:n=3");  // key 2 => trial index 2
  TrialStats faulted = RunTrials(mechanism, TestData(), TestWorkload(), 1.0,
                                 1e-9, 4, 11);
  ASSERT_EQ(clean.values.size(), 4u);
  ASSERT_EQ(faulted.values.size(), 3u);
  // Trials draw from per-trial generators, so survivors are unchanged.
  EXPECT_EQ(Bits(faulted.values[0]), Bits(clean.values[0]));
  EXPECT_EQ(Bits(faulted.values[1]), Bits(clean.values[1]));
  EXPECT_EQ(Bits(faulted.values[2]), Bits(clean.values[3]));
}

TEST(TrialIsolationTest, EstimationFaultIsCaughtPerTrial) {
  ScopedFaults faults("estimation_step:n=1");
  AimMechanism mechanism(FastAimOptions());
  TrialStats stats = RunTrials(mechanism, TestData(), TestWorkload(), 1.0,
                               1e-9, /*trials=*/1, /*seed=*/3);
  ASSERT_EQ(stats.failures.size(), 1u);
  EXPECT_NE(stats.failures[0].message.find("estimation_step"),
            std::string::npos);
  EXPECT_TRUE(stats.values.empty());
  EXPECT_EQ(stats.mean, 0.0);
}

// -------------------------------------------------- resume identity ----

TEST(ResumeTest, ResumeMatchesUninterruptedAtEveryThreadCount) {
  const double rho = CdpRho(1.0, 1e-9);
  const uint64_t seed = 31;
  std::optional<MechanismResult> reference;

  for (int threads : {1, 8}) {
    SetParallelThreads(threads);
    const std::string checkpoint = ::testing::TempDir() +
                                   "/resume_identity_t" +
                                   std::to_string(threads) + ".snap";

    // Uninterrupted control run (no checkpointing at all).
    MechanismResult uninterrupted = RunAim(FastAimOptions(), rho, seed);
    ASSERT_GE(uninterrupted.rounds, 3)
        << "fixture too small for a mid-run crash";

    // Crashed run: checkpoint every round, die at the top of round 3.
    AimOptions crash_options = FastAimOptions();
    crash_options.checkpoint_path = checkpoint;
    crash_options.checkpoint_every_rounds = 1;
    bool threw = false;
    try {
      ScopedFaults faults("aim_round:n=3");
      (void)RunAim(crash_options, rho, seed);
    } catch (const FaultInjectedError& e) {
      threw = true;
      EXPECT_EQ(e.point(), "aim_round");
    }
    ASSERT_TRUE(threw);

    StatusOr<AimSnapshot> snapshot = ReadSnapshot(checkpoint);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    EXPECT_EQ(snapshot->round, 2);  // two completed rounds before the crash
    ASSERT_TRUE(ValidateSnapshot(*snapshot,
                                 AimRunFingerprint(TestData().domain(),
                                                   TestWorkload(),
                                                   crash_options, rho),
                                 rho)
                    .ok());

    // Resume and run to completion.
    AimOptions resume_options = FastAimOptions();
    resume_options.resume_path = checkpoint;
    MechanismResult resumed = RunAim(resume_options, rho, seed);
    EXPECT_EQ(resumed.resumed_from_round, 2);
    EXPECT_EQ(uninterrupted.resumed_from_round, -1);

    ExpectIdenticalResults(uninterrupted, resumed);

    // Thread-count invariance: every thread count produces the same bits.
    if (!reference.has_value()) {
      reference = std::move(uninterrupted);
    } else {
      ExpectIdenticalResults(*reference, uninterrupted);
    }
  }
  SetParallelThreads(0);
}

TEST(ResumeTest, CheckpointWriteFailuresDoNotPerturbTheRun) {
  const double rho = 0.05;
  MechanismResult plain = RunAim(FastAimOptions(), rho, 17);

  AimOptions options = FastAimOptions();
  options.checkpoint_path =
      ::testing::TempDir() + "/never_written.snap";
  MemoryTraceSink sink;
  ScopedTraceSink scoped(&sink);
  ScopedFaults faults("snapshot_write:after=0");  // every write fails
  MechanismResult checkpointed = RunAim(options, rho, 17);

  ExpectIdenticalResults(plain, checkpointed);
  std::vector<TraceEvent> warnings = sink.events_of_type("aim_warning");
  bool saw_checkpoint_failure = false;
  for (const TraceEvent& event : warnings) {
    if (event.GetString("kind") == "checkpoint_failed") {
      saw_checkpoint_failure = true;
    }
  }
  EXPECT_TRUE(saw_checkpoint_failure);
}

TEST(ResumeTest, StaleSnapshotIsRejectedByTheValidationGate) {
  const double rho = 0.05;
  const std::string checkpoint =
      ::testing::TempDir() + "/stale_config.snap";
  AimOptions options = FastAimOptions();
  options.checkpoint_path = checkpoint;
  (void)RunAim(options, rho, 23);

  StatusOr<AimSnapshot> snapshot = ReadSnapshot(checkpoint);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  AimOptions different = FastAimOptions();
  different.max_size_mb = 16.0;  // a different run configuration
  Status valid = ValidateSnapshot(
      *snapshot,
      AimRunFingerprint(TestData().domain(), TestWorkload(), different, rho),
      rho);
  ASSERT_FALSE(valid.ok());
  EXPECT_EQ(valid.code(), StatusCode::kFailedPrecondition);

  // Same options under a different budget is also a mismatch.
  EXPECT_FALSE(ValidateSnapshot(*snapshot,
                                AimRunFingerprint(TestData().domain(),
                                                  TestWorkload(), options,
                                                  rho * 2.0),
                                rho * 2.0)
                   .ok());
}

TEST(ResumeTest, LedgerReconcilesAfterResume) {
  const double rho = CdpRho(1.0, 1e-9);
  const std::string checkpoint =
      ::testing::TempDir() + "/ledger_reconcile.snap";
  AimOptions crash_options = FastAimOptions();
  crash_options.checkpoint_path = checkpoint;
  try {
    ScopedFaults faults("aim_round:n=2");
    (void)RunAim(crash_options, rho, 41);
    FAIL() << "fault did not fire";
  } catch (const FaultInjectedError&) {
  }

  StatusOr<AimSnapshot> snapshot = ReadSnapshot(checkpoint);
  ASSERT_TRUE(snapshot.ok());
  AimOptions resume_options = FastAimOptions();
  resume_options.resume_path = checkpoint;
  MechanismResult resumed = RunAim(resume_options, rho, 41);
  MechanismResult plain = RunAim(FastAimOptions(), rho, 41);

  // The resumed ledger picks up exactly where the snapshot left off and
  // lands exactly where the uninterrupted run lands.
  EXPECT_GE(resumed.rho_used, snapshot->rho_spent);
  EXPECT_NEAR(resumed.rho_used, plain.rho_used, 1e-9);
  EXPECT_LE(resumed.rho_used, rho * (1.0 + 1e-9) + 1e-12);
}

// ------------------------------------------------------- deadline ----

TEST(DeadlineTest, ExpiryDegradesGracefully) {
  AimOptions options = FastAimOptions();
  options.deadline_seconds = 1e-9;  // expires before the first round
  MemoryTraceSink sink;
  ScopedTraceSink scoped(&sink);
  const double rho = 0.1;
  MechanismResult result = RunAim(options, rho, 7);

  EXPECT_TRUE(result.deadline_expired);
  EXPECT_EQ(result.rounds, 0);
  // Initialization already spent rho and produced one-way measurements, so
  // the degraded output is a real model, not garbage.
  EXPECT_GT(result.rho_used, 0.0);
  EXPECT_LE(result.rho_used, rho * (1.0 + 1e-9) + 1e-12);
  EXPECT_GT(result.synthetic.num_records(), 0);
  EXPECT_FALSE(result.log.measurements.empty());

  bool saw_deadline_warning = false;
  for (const TraceEvent& event : sink.events_of_type("aim_warning")) {
    if (event.GetString("kind") == "deadline_expired") {
      saw_deadline_warning = true;
      EXPECT_GE(event.GetDouble("elapsed_s"),
                event.GetDouble("deadline_s"));
      EXPECT_GE(event.GetDouble("rho_remaining"), 0.0);
    }
  }
  EXPECT_TRUE(saw_deadline_warning);
}

TEST(DeadlineTest, GenerousDeadlineChangesNothing) {
  const double rho = 0.05;
  MechanismResult plain = RunAim(FastAimOptions(), rho, 29);
  AimOptions options = FastAimOptions();
  options.deadline_seconds = 3600.0;
  MechanismResult bounded = RunAim(options, rho, 29);
  EXPECT_FALSE(bounded.deadline_expired);
  ExpectIdenticalResults(plain, bounded);
}

// ------------------------------------------------------ retry policy ----

int64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().counter(name).value();
}

TEST(RetryTest, ClassifiesStatusCodes) {
  EXPECT_TRUE(IsRetryableStatus(InternalError("torn read")));
  EXPECT_TRUE(IsRetryableStatus(UnavailableError("busy")));

  EXPECT_FALSE(IsRetryableStatus(Status::Ok()));
  EXPECT_FALSE(IsRetryableStatus(InvalidArgumentError("corrupt")));
  EXPECT_FALSE(IsRetryableStatus(NotFoundError("missing")));
  EXPECT_FALSE(IsRetryableStatus(FailedPreconditionError("stale")));
  EXPECT_FALSE(IsRetryableStatus(OutOfRangeError("past end")));
  EXPECT_FALSE(IsRetryableStatus(DeadlineExceededError("stalled")));
}

TEST(RetryTest, BackoffIsDeterministicCappedAndJittered) {
  RetryOptions options;
  options.initial_backoff_ms = 1.0;
  options.max_backoff_ms = 8.0;
  options.multiplier = 2.0;
  options.jitter = 0.25;
  options.seed = 7;
  const RetryPolicy policy(options);

  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double base =
        std::min(options.max_backoff_ms,
                 options.initial_backoff_ms *
                     std::pow(options.multiplier, attempt - 1));
    const double b = policy.BackoffMs("site", attempt);
    EXPECT_GE(b, base) << attempt;
    EXPECT_LE(b, base * (1.0 + options.jitter)) << attempt;
    // Same (seed, site, attempt) -> the same delay, bit for bit: a replayed
    // run backs off identically.
    EXPECT_EQ(Bits(b), Bits(RetryPolicy(options).BackoffMs("site", attempt)));
  }
  // Jitter decorrelates sites and attempts.
  EXPECT_NE(Bits(policy.BackoffMs("site_a", 4)),
            Bits(policy.BackoffMs("site_b", 4)));

  RetryOptions reseeded = options;
  reseeded.seed = 8;
  EXPECT_NE(Bits(policy.BackoffMs("site", 1)),
            Bits(RetryPolicy(reseeded).BackoffMs("site", 1)));
}

TEST(RetryTest, RunRecoversFromTransientFailureAndCounts) {
  std::vector<double> slept;
  RetryOptions options;
  options.max_attempts = 5;
  options.sleep = [&slept](double ms) { slept.push_back(ms); };
  const RetryPolicy policy(options);

  const int64_t attempts_before = CounterValue("robust.retry.attempts");
  const int64_t successes_before = CounterValue("robust.retry.successes");
  int calls = 0;
  Status status = policy.Run("flaky", [&calls] {
    ++calls;
    return calls < 3 ? InternalError("transient") : Status::Ok();
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(slept.size(), 2u);  // one backoff per re-attempt
  EXPECT_EQ(Bits(slept[0]), Bits(policy.BackoffMs("flaky", 1)));
  EXPECT_EQ(Bits(slept[1]), Bits(policy.BackoffMs("flaky", 2)));
  EXPECT_EQ(CounterValue("robust.retry.attempts"), attempts_before + 2);
  EXPECT_EQ(CounterValue("robust.retry.successes"), successes_before + 1);
}

TEST(RetryTest, FatalErrorsPassThroughWithoutRetry) {
  int calls = 0;
  RetryOptions options;
  options.sleep = [](double) { FAIL() << "fatal errors must not back off"; };
  Status status = RetryPolicy(options).Run("corrupt", [&calls] {
    ++calls;
    return InvalidArgumentError("checksum mismatch");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "checksum mismatch");  // unannotated
}

TEST(RetryTest, ExhaustionKeepsTheCodeAndAnnotates) {
  int calls = 0;
  RetryOptions options;
  options.max_attempts = 3;
  options.sleep = [](double) {};
  const int64_t exhausted_before = CounterValue("robust.retry.exhausted");
  Status status = RetryPolicy(options).Run("doomed", [&calls] {
    ++calls;
    return InternalError("still broken");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("still broken"), std::string::npos);
  EXPECT_NE(status.message().find("retries exhausted after 3 attempts"),
            std::string::npos)
      << status.ToString();
  EXPECT_EQ(CounterValue("robust.retry.exhausted"), exhausted_before + 1);
}

TEST(RetryTest, RunOrRecoversValues) {
  RetryOptions options;
  options.sleep = [](double) {};
  const RetryPolicy policy(options);
  int calls = 0;
  StatusOr<int> result = policy.RunOr("value_op", [&calls]() -> StatusOr<int> {
    ++calls;
    if (calls < 2) return InternalError("transient");
    return 42;
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);

  StatusOr<int> fatal = policy.RunOr(
      "fatal_op", []() -> StatusOr<int> { return NotFoundError("gone"); });
  ASSERT_FALSE(fatal.ok());
  EXPECT_EQ(fatal.status().code(), StatusCode::kNotFound);
}

// -------------------------------------------------- exit-code contract ----

TEST(ExitCodeTest, MapsEveryStatusCategory) {
  EXPECT_EQ(ExitCodeForStatus(Status::Ok()), 0);
  EXPECT_EQ(ExitCodeForStatus(InternalError("x")), 1);
  EXPECT_EQ(ExitCodeForStatus(InvalidArgumentError("x")), 2);
  // 3 is reserved for audit_cli's claim-refutation verdict.
  EXPECT_EQ(ExitCodeForStatus(NotFoundError("x")), 4);
  EXPECT_EQ(ExitCodeForStatus(FailedPreconditionError("x")), 5);
  EXPECT_EQ(ExitCodeForStatus(OutOfRangeError("x")), 6);
  EXPECT_EQ(ExitCodeForStatus(DeadlineExceededError("x")), 7);
  EXPECT_EQ(ExitCodeForStatus(UnavailableError("x")), 8);
}

// ------------------------------------------- checkpoint generations ----

bool PathExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

void CorruptFile(const std::string& path, size_t offset_divisor = 2) {
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / offset_divisor] ^= 0x01;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(GenerationTest, PathLayout) {
  EXPECT_EQ(GenerationPath("/tmp/c.snap", 0), "/tmp/c.snap");
  EXPECT_EQ(GenerationPath("/tmp/c.snap", 1), "/tmp/c.snap.gen1");
  EXPECT_EQ(GenerationPath("/tmp/c.snap", 7), "/tmp/c.snap.gen7");
}

TEST(GenerationTest, SingleGenerationKeepsOnlyTheBaseFile) {
  const std::string base = ::testing::TempDir() + "/gen_single.snap";
  AimSnapshot snapshot = SampleSnapshot();
  for (int round = 1; round <= 3; ++round) {
    snapshot.round = round;
    ASSERT_TRUE(WriteSnapshotGeneration(snapshot, base, 1).ok());
  }
  StatusOr<AimSnapshot> read = ReadSnapshot(base);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->round, 3);
  EXPECT_FALSE(PathExists(GenerationPath(base, 1)));
}

TEST(GenerationTest, RotationKeepsTheLastNAndGcsOlder) {
  const std::string base = ::testing::TempDir() + "/gen_rotate.snap";
  AimSnapshot snapshot = SampleSnapshot();
  for (int round = 1; round <= 5; ++round) {
    snapshot.round = round;
    ASSERT_TRUE(WriteSnapshotGeneration(snapshot, base, 3).ok());
  }
  // Ladder after 5 writes with N=3: base=5, gen1=4, gen2=3; older GC'd.
  StatusOr<AimSnapshot> newest = ReadSnapshot(base);
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(newest->round, 5);
  StatusOr<AimSnapshot> gen1 = ReadSnapshot(GenerationPath(base, 1));
  ASSERT_TRUE(gen1.ok());
  EXPECT_EQ(gen1->round, 4);
  StatusOr<AimSnapshot> gen2 = ReadSnapshot(GenerationPath(base, 2));
  ASSERT_TRUE(gen2.ok());
  EXPECT_EQ(gen2->round, 3);
  EXPECT_FALSE(PathExists(GenerationPath(base, 3)));
}

TEST(GenerationTest, LoadPrefersNewestValidGeneration) {
  const std::string base = ::testing::TempDir() + "/gen_load.snap";
  AimSnapshot snapshot = SampleSnapshot();
  for (int round = 1; round <= 4; ++round) {
    snapshot.round = round;
    ASSERT_TRUE(WriteSnapshotGeneration(snapshot, base, 3).ok());
  }
  StatusOr<LoadedGeneration> loaded = LoadLatestValidGeneration(
      base, snapshot.fingerprint, snapshot.rho_budget);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->generation, 0);
  EXPECT_EQ(loaded->path, base);
  EXPECT_EQ(loaded->snapshot.round, 4);
  EXPECT_TRUE(loaded->rejected.empty());
}

TEST(GenerationTest, LoadFallsBackPastCorruptNewest) {
  const std::string base = ::testing::TempDir() + "/gen_fallback.snap";
  AimSnapshot snapshot = SampleSnapshot();
  for (int round = 1; round <= 4; ++round) {
    snapshot.round = round;
    ASSERT_TRUE(WriteSnapshotGeneration(snapshot, base, 3).ok());
  }
  CorruptFile(base);

  StatusOr<LoadedGeneration> loaded = LoadLatestValidGeneration(
      base, snapshot.fingerprint, snapshot.rho_budget);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->generation, 1);
  EXPECT_EQ(loaded->path, GenerationPath(base, 1));
  EXPECT_EQ(loaded->snapshot.round, 3);
  ASSERT_EQ(loaded->rejected.size(), 1u);
  EXPECT_NE(loaded->rejected[0].find(base), std::string::npos);
}

TEST(GenerationTest, LoadToleratesVacantSlots) {
  // A crash mid-rotation can leave a hole in the ladder: base and gen1
  // damaged/missing, gen2 intact. Resume must keep scanning.
  const std::string base = ::testing::TempDir() + "/gen_vacant.snap";
  AimSnapshot snapshot = SampleSnapshot();
  for (int round = 1; round <= 4; ++round) {
    snapshot.round = round;
    ASSERT_TRUE(WriteSnapshotGeneration(snapshot, base, 3).ok());
  }
  CorruptFile(base);
  ASSERT_EQ(std::remove(GenerationPath(base, 1).c_str()), 0);

  StatusOr<LoadedGeneration> loaded = LoadLatestValidGeneration(
      base, snapshot.fingerprint, snapshot.rho_budget);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->generation, 2);
  EXPECT_EQ(loaded->snapshot.round, 2);
  ASSERT_EQ(loaded->rejected.size(), 1u);  // the corrupt base, not the hole
}

TEST(GenerationTest, LoadWithNoFilesIsNotFound) {
  StatusOr<LoadedGeneration> loaded = LoadLatestValidGeneration(
      ::testing::TempDir() + "/gen_never_written.snap", 1, 1.0);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(GenerationTest, LoadWithOnlyInvalidFilesListsEveryRejection) {
  const std::string base = ::testing::TempDir() + "/gen_all_bad.snap";
  AimSnapshot snapshot = SampleSnapshot();
  snapshot.round = 1;
  ASSERT_TRUE(WriteSnapshotGeneration(snapshot, base, 2).ok());
  snapshot.round = 2;
  ASSERT_TRUE(WriteSnapshotGeneration(snapshot, base, 2).ok());
  CorruptFile(base);
  CorruptFile(GenerationPath(base, 1));

  StatusOr<LoadedGeneration> loaded = LoadLatestValidGeneration(
      base, snapshot.fingerprint, snapshot.rho_budget);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find(base), std::string::npos);
  EXPECT_NE(loaded.status().message().find(GenerationPath(base, 1)),
            std::string::npos);

  // A fingerprint mismatch on otherwise-intact files is also a rejection,
  // not a fallback target.
  const std::string base2 = ::testing::TempDir() + "/gen_wrong_fp.snap";
  ASSERT_TRUE(WriteSnapshotGeneration(snapshot, base2, 1).ok());
  StatusOr<LoadedGeneration> mismatched = LoadLatestValidGeneration(
      base2, snapshot.fingerprint + 1, snapshot.rho_budget);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

TEST(GenerationTest, WriteRetriesPastATransientSnapshotFault) {
  const std::string base = ::testing::TempDir() + "/gen_retry.snap";
  RetryOptions retry_options;
  retry_options.sleep = [](double) {};
  const RetryPolicy retry(retry_options);
  AimSnapshot snapshot = SampleSnapshot();
  snapshot.round = 9;

  ScopedFaults faults("snapshot_write:n=1");
  ASSERT_TRUE(WriteSnapshotGeneration(snapshot, base, 3, &retry).ok());
  EXPECT_EQ(FaultHitCount("snapshot_write"), 2);  // failed once, then wrote
  StatusOr<AimSnapshot> read = ReadSnapshot(base);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->round, 9);
}

// ------------------------------------------------------ stall watchdog ----

TEST(SupervisorTest, TripsOnStalledProgressAndCancels) {
  CancelToken token;
  SupervisorOptions options;
  options.stall_window_seconds = 0.05;
  options.poll_interval_seconds = 0.005;
  const int64_t stalls_before = CounterValue("robust.supervisor.stalls");
  RunSupervisor supervisor(&token, [] { return int64_t{0}; }, options);

  // The watchdog must cancel within a couple of windows; poll generously.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!token.cancelled() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(supervisor.stall_detected());
  EXPECT_EQ(supervisor.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(supervisor.status().message().find("stall window"),
            std::string::npos)
      << supervisor.status().ToString();
  EXPECT_EQ(CounterValue("robust.supervisor.stalls"), stalls_before + 1);
  supervisor.Stop();  // idempotent after a trip
}

TEST(SupervisorTest, NeverTripsWhileProgressAdvances) {
  CancelToken token;
  SupervisorOptions options;
  options.stall_window_seconds = 0.05;
  options.poll_interval_seconds = 0.005;
  std::atomic<int64_t> progress{0};
  RunSupervisor supervisor(
      &token, [&progress] { return progress.fetch_add(1) + 1; }, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  supervisor.Stop();
  EXPECT_FALSE(supervisor.stall_detected());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(supervisor.status().ok());
}

TEST(SupervisorTest, StopBeforeTheWindowNeverTrips) {
  CancelToken token;
  SupervisorOptions options;
  options.stall_window_seconds = 3600.0;
  RunSupervisor supervisor(&token, [] { return int64_t{0}; }, options);
  supervisor.Stop();
  EXPECT_FALSE(supervisor.stall_detected());
  EXPECT_FALSE(token.cancelled());
}

TEST(SupervisorTest, AimRoundProbeReadsTheRoundCounter) {
  SetMetricsEnabled(true);
  std::function<int64_t()> probe = AimRoundProgressProbe();
  const int64_t before = probe();
  MetricsRegistry::Global().counter("aim.rounds").Add(1);
  EXPECT_EQ(probe(), before + 1);
  SetMetricsEnabled(false);
}

// ------------------------------------------- cooperative cancellation ----

TEST(CancelTest, CancelledRunWindsDownWithAFinalCheckpoint) {
  const double rho = CdpRho(1.0, 1e-9);
  const uint64_t seed = 67;
  const std::string checkpoint =
      ::testing::TempDir() + "/cancel_final.snap";

  MechanismResult plain = RunAim(FastAimOptions(), rho, seed);
  ASSERT_GE(plain.rounds, 2);

  // Pre-cancelled token: the loop stops at the FIRST round boundary, after
  // initialization but before any round completes.
  CancelToken token;
  token.Cancel();
  AimOptions options = FastAimOptions();
  options.cancel = &token;
  options.checkpoint_path = checkpoint;
  MemoryTraceSink sink;
  ScopedTraceSink scoped(&sink);
  MechanismResult cancelled = RunAim(options, rho, seed);

  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_EQ(cancelled.rounds, 0);
  EXPECT_FALSE(cancelled.deadline_expired);
  // The degraded output is still a real model over the init measurements.
  EXPECT_GT(cancelled.synthetic.num_records(), 0);
  EXPECT_GT(cancelled.rho_used, 0.0);
  bool saw_cancel_warning = false;
  for (const TraceEvent& event : sink.events_of_type("aim_warning")) {
    if (event.GetString("kind") == "cancelled") saw_cancel_warning = true;
  }
  EXPECT_TRUE(saw_cancel_warning);

  // The forced final checkpoint is on disk, valid, and resumable: resuming
  // it WITHOUT the cancel signal completes the run bitwise-identically to
  // the uninterrupted control.
  StatusOr<AimSnapshot> snapshot = ReadSnapshot(checkpoint);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  AimOptions resume_options = FastAimOptions();
  resume_options.resume_path = checkpoint;
  MechanismResult resumed = RunAim(resume_options, rho, seed);
  ExpectIdenticalResults(plain, resumed);
}

TEST(CancelTest, UncancelledTokenChangesNothing) {
  const double rho = 0.05;
  MechanismResult plain = RunAim(FastAimOptions(), rho, 71);
  CancelToken token;
  AimOptions options = FastAimOptions();
  options.cancel = &token;
  MechanismResult watched = RunAim(options, rho, 71);
  EXPECT_FALSE(watched.cancelled);
  ExpectIdenticalResults(plain, watched);
}

// ------------------------------------- generation fallback, end to end ----

TEST(GenerationResumeTest, CorruptNewestGenerationResumesIdentically) {
  const double rho = CdpRho(1.0, 1e-9);
  const uint64_t seed = 31;

  for (int threads : {1, 8}) {
    SetParallelThreads(threads);
    const std::string checkpoint = ::testing::TempDir() +
                                   "/gen_resume_t" +
                                   std::to_string(threads) + ".snap";
    // Make sure no ladder from a previous (failed) test run interferes.
    for (int k = 0; k < kGenerationScanLimit; ++k) {
      std::remove(GenerationPath(checkpoint, k).c_str());
    }

    MechanismResult uninterrupted = RunAim(FastAimOptions(), rho, seed);
    ASSERT_GE(uninterrupted.rounds, 3);

    // Crash at the top of round 3 with a 3-deep generation ladder: the
    // ladder holds rounds 2 (base), 1 (gen1), 0 (gen2).
    AimOptions crash_options = FastAimOptions();
    crash_options.checkpoint_path = checkpoint;
    crash_options.checkpoint_every_rounds = 1;
    crash_options.checkpoint_generations = 3;
    bool threw = false;
    try {
      ScopedFaults faults("aim_round:n=3");
      (void)RunAim(crash_options, rho, seed);
    } catch (const FaultInjectedError&) {
      threw = true;
    }
    ASSERT_TRUE(threw);

    // The newest generation is damaged after the crash (the scenario the
    // ladder exists for). Resume must fall back to gen1 (round 1), warn,
    // and still finish bitwise-identical to the uninterrupted run.
    CorruptFile(checkpoint);
    AimOptions resume_options = FastAimOptions();
    resume_options.resume_path = checkpoint;
    MemoryTraceSink sink;
    ScopedTraceSink scoped(&sink);
    MechanismResult resumed = RunAim(resume_options, rho, seed);
    EXPECT_EQ(resumed.resumed_from_round, 1);
    ExpectIdenticalResults(uninterrupted, resumed);

    bool saw_fallback = false;
    for (const TraceEvent& event : sink.events_of_type("aim_warning")) {
      if (event.GetString("kind") == "checkpoint_fallback") {
        saw_fallback = true;
        EXPECT_EQ(event.GetString("path"), GenerationPath(checkpoint, 1));
        EXPECT_NE(event.GetString("rejected").find(checkpoint),
                  std::string::npos);
      }
    }
    EXPECT_TRUE(saw_fallback);
  }
  SetParallelThreads(0);
}

TEST(GenerationResumeTest, EveryGenerationIsAValidResumePoint) {
  // Resuming from ANY surviving rung of the ladder — not just the newest —
  // replays to the same bits: damage base AND gen1, land on gen2 (round 0).
  const double rho = CdpRho(1.0, 1e-9);
  const uint64_t seed = 31;
  const std::string checkpoint =
      ::testing::TempDir() + "/gen_resume_deep.snap";
  for (int k = 0; k < kGenerationScanLimit; ++k) {
    std::remove(GenerationPath(checkpoint, k).c_str());
  }

  MechanismResult uninterrupted = RunAim(FastAimOptions(), rho, seed);
  AimOptions crash_options = FastAimOptions();
  crash_options.checkpoint_path = checkpoint;
  crash_options.checkpoint_every_rounds = 1;
  crash_options.checkpoint_generations = 3;
  try {
    ScopedFaults faults("aim_round:n=3");
    (void)RunAim(crash_options, rho, seed);
    FAIL() << "fault did not fire";
  } catch (const FaultInjectedError&) {
  }
  CorruptFile(checkpoint);
  ASSERT_EQ(std::remove(GenerationPath(checkpoint, 1).c_str()), 0);

  AimOptions resume_options = FastAimOptions();
  resume_options.resume_path = checkpoint;
  MechanismResult resumed = RunAim(resume_options, rho, seed);
  EXPECT_EQ(resumed.resumed_from_round, 0);
  ExpectIdenticalResults(uninterrupted, resumed);
}

// ------------------------------------------- snapshot corruption fuzz ----

uint64_t SnapshotFuzzMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TEST(SnapshotFuzzTest, MutatedSnapshotsAreRejectedTypedNeverAccepted) {
  // 320 seeded mutations (byte flips and truncations) of a valid snapshot.
  // Every mutant must fail ParseSnapshot with a typed, non-empty error —
  // the whole payload is checksummed, so no flip can survive — and none
  // may crash the parser.
  const std::string clean = SerializeSnapshot(SampleSnapshot());
  ASSERT_GT(clean.size(), 64u);
  int flips = 0, truncations = 0;
  for (uint64_t seed = 0; seed < 320; ++seed) {
    std::string mutant = clean;
    const uint64_t r = SnapshotFuzzMix(seed);
    if (seed % 4 == 3) {
      mutant.resize(r % clean.size());  // strict prefix, possibly empty
      ++truncations;
    } else {
      const size_t pos = r % clean.size();
      mutant[pos] = static_cast<char>(
          mutant[pos] ^ static_cast<char>(1u << (SnapshotFuzzMix(r) % 8)));
      ++flips;
    }
    StatusOr<AimSnapshot> parsed = ParseSnapshot(mutant);
    ASSERT_FALSE(parsed.ok())
        << "seed " << seed << " produced an accepted mutant";
    EXPECT_FALSE(parsed.status().message().empty()) << "seed " << seed;
    EXPECT_NE(parsed.status().code(), StatusCode::kOk);
  }
  EXPECT_EQ(flips + truncations, 320);
  EXPECT_GT(truncations, 0);
}

TEST(SnapshotFuzzTest, MutatedSnapshotFilesNeverResumeTheMechanism) {
  // The same property end-to-end through the generation loader: a damaged
  // single-generation checkpoint is a typed InvalidArgument, never a load.
  const std::string base = ::testing::TempDir() + "/fuzz_resume.snap";
  AimSnapshot snapshot = SampleSnapshot();
  const std::string clean = SerializeSnapshot(snapshot);
  for (uint64_t seed = 0; seed < 32; ++seed) {
    std::string mutant = clean;
    const size_t pos = SnapshotFuzzMix(seed) % clean.size();
    mutant[pos] = static_cast<char>(mutant[pos] ^ 0x10);
    {
      std::ofstream out(base, std::ios::binary | std::ios::trunc);
      out.write(mutant.data(), static_cast<std::streamsize>(mutant.size()));
    }
    StatusOr<LoadedGeneration> loaded = LoadLatestValidGeneration(
        base, snapshot.fingerprint, snapshot.rho_budget);
    ASSERT_FALSE(loaded.ok()) << "seed " << seed;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << "seed " << seed << ": " << loaded.status().ToString();
  }
  std::remove(base.c_str());
}

}  // namespace
}  // namespace aim
