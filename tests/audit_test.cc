// Tests for the empirical privacy auditing harness (src/audit/): canary
// pair construction, the Clopper-Pearson estimator, attack statistics,
// paired-trial determinism across thread counts, fault-injection isolation,
// and the end-to-end claim check for AIM and MST.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "audit/attack.h"
#include "audit/audit.h"
#include "audit/canary.h"
#include "audit/estimator.h"
#include "marginal/marginal.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "mechanisms/mst.h"
#include "parallel/thread_pool.h"
#include "robust/fault.h"

namespace aim {
namespace {

// ---------------------------------------------------------------- canary --

TEST(CanaryTest, WorstCasePairShape) {
  const Domain domain = Domain::WithSizes({4, 3, 5});
  const CanaryPair pair = MakeWorstCaseCanaryPair(domain, 100);
  EXPECT_EQ(pair.base.num_records(), 100);
  EXPECT_EQ(pair.with_canary.num_records(), 101);
  ASSERT_EQ(pair.canary.size(), 3u);
  EXPECT_EQ(pair.canary[0], 3);
  EXPECT_EQ(pair.canary[1], 2);
  EXPECT_EQ(pair.canary[2], 4);
  // The first 100 records agree between the two sides.
  for (int64_t r = 0; r < 100; ++r) {
    EXPECT_EQ(pair.base.Record(r), pair.with_canary.Record(r));
  }
  EXPECT_EQ(pair.with_canary.Record(100), pair.canary);
}

TEST(CanaryTest, CanaryCellIsEmptyUnderBaseOnEveryProjection) {
  const Domain domain = Domain::WithSizes({4, 3, 5});
  const CanaryPair pair = MakeWorstCaseCanaryPair(domain, 200);
  // Every 1-way and 2-way projection: zero mass under D, exactly 1 under D'.
  for (const Workload& workload :
       {AllKWayWorkload(domain, 1), AllKWayWorkload(domain, 2),
        AllKWayWorkload(domain, 3)}) {
    for (const WorkloadQuery& query : workload.queries()) {
      const int64_t cell = CanaryCell(domain, query.attrs, pair.canary);
      const std::vector<double> base_marginal =
          ComputeMarginal(pair.base, query.attrs);
      const std::vector<double> canary_marginal =
          ComputeMarginal(pair.with_canary, query.attrs);
      ASSERT_LT(cell, static_cast<int64_t>(base_marginal.size()));
      EXPECT_EQ(base_marginal[static_cast<size_t>(cell)], 0.0)
          << query.attrs.ToString();
      EXPECT_EQ(canary_marginal[static_cast<size_t>(cell)], 1.0)
          << query.attrs.ToString();
    }
  }
}

TEST(CanaryTest, MassConservation) {
  const Domain domain = Domain::WithSizes({3, 3});
  const CanaryPair pair = MakeWorstCaseCanaryPair(domain, 50);
  const std::vector<double> marginal =
      ComputeMarginal(pair.base, AttrSet({0, 1}));
  double total = 0.0;
  for (double v : marginal) total += v;
  EXPECT_EQ(total, 50.0);
}

// ------------------------------------------------------------- estimator --

TEST(EstimatorTest, RegularizedIncompleteBetaKnownValues) {
  // I_x(1, 1) = x (the uniform CDF).
  for (double x : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(x, 1.0, 1.0), x, 1e-12);
  }
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(RegularizedIncompleteBeta(0.3, 2.0, 5.0),
              1.0 - RegularizedIncompleteBeta(0.7, 5.0, 2.0), 1e-12);
  // I_{1/2}(a, a) = 1/2 for every symmetric Beta.
  EXPECT_NEAR(RegularizedIncompleteBeta(0.5, 3.0, 3.0), 0.5, 1e-12);
  // I_x(1, b) = 1 - (1-x)^b.
  EXPECT_NEAR(RegularizedIncompleteBeta(0.2, 1.0, 4.0),
              1.0 - std::pow(0.8, 4.0), 1e-12);
}

TEST(EstimatorTest, ClopperPearsonBoundaries) {
  // k = 0: lo pinned to 0, hi = 1 - (alpha/2)^(1/n).
  const BinomialCi zero = ClopperPearsonCi(0, 10, 0.95);
  EXPECT_EQ(zero.lo, 0.0);
  EXPECT_NEAR(zero.hi, 1.0 - std::pow(0.025, 0.1), 1e-9);
  // k = n mirrors it.
  const BinomialCi full = ClopperPearsonCi(10, 10, 0.95);
  EXPECT_NEAR(full.lo, std::pow(0.025, 0.1), 1e-9);
  EXPECT_EQ(full.hi, 1.0);
}

TEST(EstimatorTest, ClopperPearsonInteriorMatchesReference) {
  // 5/10 at 95%: the textbook exact interval is (0.1871, 0.8129).
  const BinomialCi ci = ClopperPearsonCi(5, 10, 0.95);
  EXPECT_NEAR(ci.lo, 0.1871, 5e-4);
  EXPECT_NEAR(ci.hi, 0.8129, 5e-4);
  // The interval contains the point estimate and is a proper interval.
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
}

TEST(EstimatorTest, ClopperPearsonWidensWithConfidence) {
  const BinomialCi narrow = ClopperPearsonCi(30, 100, 0.90);
  const BinomialCi wide = ClopperPearsonCi(30, 100, 0.99);
  EXPECT_LT(wide.lo, narrow.lo);
  EXPECT_GT(wide.hi, narrow.hi);
}

TEST(EstimatorTest, EpsFromRates) {
  const double inf = std::numeric_limits<double>::infinity();
  // No advantage -> no bound.
  EXPECT_EQ(EpsFromRates(0.5, 0.5, 1e-9), 0.0);
  // Textbook point: eps >= log(0.9 / 0.1) = log 9.
  EXPECT_NEAR(EpsFromRates(0.9, 0.1, 0.0), std::log(9.0), 1e-12);
  // The reverse (TNR/FNR) direction binds when FPR is tiny and TPR modest.
  EXPECT_NEAR(EpsFromRates(0.5, 0.01, 0.0),
              std::max(std::log(0.5 / 0.01), std::log(0.99 / 0.5)), 1e-12);
  // A perfect distinguisher is inconsistent with every finite epsilon.
  EXPECT_EQ(EpsFromRates(1.0, 0.0, 1e-9), inf);
  // The guess direction is fixed a priori (larger statistic = canary
  // present), so an anti-correlated classifier yields no bound — flipping
  // the guess after seeing the data would invalidate the confidence
  // statement.
  EXPECT_EQ(EpsFromRates(0.0, 0.9, 0.0), 0.0);
  // Delta absorbs small advantages entirely.
  EXPECT_EQ(EpsFromRates(0.05, 0.0, 0.1), 0.0);
}

TEST(EstimatorTest, EstimateEpsilonOrdersItsEdges) {
  const EpsEstimate estimate = EstimateEpsilon(70, 30, 100, 1e-9, 0.95);
  EXPECT_EQ(estimate.true_positives, 70);
  EXPECT_EQ(estimate.false_positives, 30);
  EXPECT_NEAR(estimate.tpr, 0.7, 1e-12);
  EXPECT_NEAR(estimate.fpr, 0.3, 1e-12);
  EXPECT_LE(estimate.eps_lower, estimate.eps_point);
  EXPECT_LE(estimate.eps_point, estimate.eps_upper);
  EXPECT_GT(estimate.eps_point, 0.0);
  EXPECT_TRUE(std::isfinite(estimate.eps_upper));
}

// ---------------------------------------------------------------- attack --

TEST(AttackTest, ParseRoundTrips) {
  for (AttackStatistic statistic :
       {AttackStatistic::kMeasurementCanaryMass,
        AttackStatistic::kSyntheticCanaryLikelihood,
        AttackStatistic::kSelectionTrace}) {
    StatusOr<AttackStatistic> parsed =
        ParseAttackStatistic(ToString(statistic));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, statistic);
  }
  EXPECT_FALSE(ParseAttackStatistic("no-such-statistic").ok());
}

TEST(AttackTest, MeasurementMassReadsTheLog) {
  const Domain domain = Domain::WithSizes({3, 3});
  const std::vector<int> canary = {2, 2};
  MechanismResult result;
  Measurement m;
  m.attrs = AttrSet({0});
  m.values = {1.0, 2.0, 5.0};  // canary cell = index 2
  m.sigma = 2.0;
  result.log.measurements.push_back(m);
  Measurement m2;
  m2.attrs = AttrSet({0, 1});
  m2.values = std::vector<double>(9, 0.0);
  m2.values[8] = 3.0;  // cell of (2,2) in row-major 3x3
  m2.sigma = 1.0;
  result.log.measurements.push_back(m2);
  const double mass =
      ExtractStatistic(AttackStatistic::kMeasurementCanaryMass, result,
                       domain, canary);
  EXPECT_NEAR(mass, 5.0 / 4.0 + 3.0 / 1.0, 1e-12);
}

TEST(AttackTest, SelectionTraceZeroWithoutRoundErrors) {
  MechanismResult result;
  RoundInfo round;
  round.sigma = 0.0;
  round.estimated_error_on_selected = 0.0;
  result.log.rounds.push_back(round);
  EXPECT_EQ(ExtractStatistic(AttackStatistic::kSelectionTrace, result,
                             Domain::WithSizes({2}), {1}),
            0.0);
}

// ----------------------------------------------------------------- audit --

AuditOptions SmallAuditOptions() {
  AuditOptions options;
  options.epsilon = 1.0;
  options.delta = 1e-9;
  options.pairs = 12;
  options.num_records = 200;
  options.seed = 11;
  return options;
}

MstMechanism SmallMst() { return MstMechanism(); }

AimMechanism SmallAim() {
  AimOptions options;
  options.rounds_per_attribute = 4;
  options.round_estimation.max_iters = 40;
  options.final_estimation.max_iters = 60;
  return AimMechanism(options);
}

TEST(AuditTest, RejectsBadOptions) {
  const Domain domain = Domain::WithSizes({3, 3});
  const Workload workload = AllKWayWorkload(domain, 2);
  const MstMechanism mst = SmallMst();
  AuditOptions options = SmallAuditOptions();
  options.pairs = 0;
  EXPECT_FALSE(RunAudit(mst, domain, workload, options).ok());
  options = SmallAuditOptions();
  options.delta = 0.0;
  EXPECT_FALSE(RunAudit(mst, domain, workload, options).ok());
  options = SmallAuditOptions();
  options.confidence = 1.0;
  EXPECT_FALSE(RunAudit(mst, domain, workload, options).ok());
}

TEST(AuditTest, PairedTrialsAreDeterministicAcrossThreadCounts) {
  const Domain domain = Domain::WithSizes({3, 3, 3});
  const Workload workload = AllKWayWorkload(domain, 2);
  const MstMechanism mst = SmallMst();
  const AuditOptions options = SmallAuditOptions();
  SetParallelThreads(1);
  const StatusOr<AuditResult> serial =
      RunAudit(mst, domain, workload, options);
  SetParallelThreads(8);
  const StatusOr<AuditResult> parallel =
      RunAudit(mst, domain, workload, options);
  SetParallelThreads(0);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  // Bitwise-identical statistics, threshold, and bounds: the audit fan-out
  // inherits the ParallelMap determinism contract.
  EXPECT_EQ(serial->base_stats, parallel->base_stats);
  EXPECT_EQ(serial->canary_stats, parallel->canary_stats);
  EXPECT_EQ(serial->threshold, parallel->threshold);
  EXPECT_EQ(serial->estimate.eps_lower, parallel->estimate.eps_lower);
  EXPECT_EQ(serial->estimate.eps_upper, parallel->estimate.eps_upper);
}

TEST(AuditTest, FaultedPairsAreExcludedAndSurvivorsUnchanged) {
  const Domain domain = Domain::WithSizes({3, 3, 3});
  const Workload workload = AllKWayWorkload(domain, 2);
  const MstMechanism mst = SmallMst();
  const AuditOptions options = SmallAuditOptions();
  const StatusOr<AuditResult> clean =
      RunAudit(mst, domain, workload, options);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(static_cast<int>(clean->base_stats.size()), options.pairs);

  StatusOr<AuditResult> faulted = InternalError("unset");
  {
    // Keyed fault: pair index 3 (hit key 3 = 4th hit) fails regardless of
    // scheduling.
    ScopedFaults faults("trial_run:n=4");
    faulted = RunAudit(mst, domain, workload, options);
  }
  ASSERT_TRUE(faulted.ok());
  ASSERT_EQ(faulted->failures.size(), 1u);
  EXPECT_EQ(faulted->failures[0].pair, 3);
  ASSERT_EQ(static_cast<int>(faulted->base_stats.size()),
            options.pairs - 1);
  // Survivors are bitwise identical to the clean run's corresponding
  // trials: arming faults cannot change the trials that do not fire.
  std::vector<double> expected_base, expected_canary;
  for (int t = 0; t < options.pairs; ++t) {
    if (t == 3) continue;
    expected_base.push_back(clean->base_stats[static_cast<size_t>(t)]);
    expected_canary.push_back(clean->canary_stats[static_cast<size_t>(t)]);
  }
  EXPECT_EQ(faulted->base_stats, expected_base);
  EXPECT_EQ(faulted->canary_stats, expected_canary);
  // The bound is computed from the survivors only.
  EXPECT_EQ(faulted->estimate.pairs, options.pairs - 1);
}

TEST(AuditTest, AllPairsFailedIsAnError) {
  const Domain domain = Domain::WithSizes({3, 3});
  const Workload workload = AllKWayWorkload(domain, 2);
  const MstMechanism mst = SmallMst();
  AuditOptions options = SmallAuditOptions();
  options.pairs = 3;
  ScopedFaults faults("trial_run:after=0");  // every pair fails
  EXPECT_FALSE(RunAudit(mst, domain, workload, options).ok());
}

TEST(AuditTest, StrongBudgetSeparatesPerfectly) {
  // At eps = 100 the Gaussian noise is tiny against the canary's unit mass,
  // so the measurement statistic separates the two sides completely and
  // the sound lower bound is strictly positive (yet far below the claim —
  // finite trials cannot certify eps = 100).
  const Domain domain = Domain::WithSizes({3, 3, 3});
  const Workload workload = AllKWayWorkload(domain, 2);
  const MstMechanism mst = SmallMst();
  AuditOptions options = SmallAuditOptions();
  options.epsilon = 100.0;
  options.pairs = 16;
  const StatusOr<AuditResult> audit =
      RunAudit(mst, domain, workload, options);
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->estimate.tpr, 1.0);
  EXPECT_EQ(audit->estimate.fpr, 0.0);
  EXPECT_GT(audit->estimate.eps_lower, 0.0);
  EXPECT_FALSE(audit->refuted);
}

TEST(AuditTest, MstClaimConsistentAtModestEpsilon) {
  const Domain domain = Domain::WithSizes({4, 4, 4});
  const Workload workload = AllKWayWorkload(domain, 2);
  const MstMechanism mst = SmallMst();
  AuditOptions options = SmallAuditOptions();
  options.pairs = 40;
  options.num_records = 500;
  options.seed = 5;
  const StatusOr<AuditResult> audit =
      RunAudit(mst, domain, workload, options);
  ASSERT_TRUE(audit.ok());
  EXPECT_FALSE(audit->refuted);
  EXPECT_LE(audit->estimate.eps_lower, options.epsilon);
  // The acceptance bar: even the OPTIMISTIC confidence edge stays within
  // the accountant's claim at this operating point.
  EXPECT_LE(audit->estimate.eps_upper, options.epsilon);
}

TEST(AuditTest, AimClaimConsistentAtModestEpsilon) {
  const Domain domain = Domain::WithSizes({4, 4, 4});
  const Workload workload = AllKWayWorkload(domain, 2);
  const AimMechanism aim = SmallAim();
  AuditOptions options = SmallAuditOptions();
  options.pairs = 40;
  options.num_records = 500;
  options.seed = 5;
  const StatusOr<AuditResult> audit =
      RunAudit(aim, domain, workload, options);
  ASSERT_TRUE(audit.ok());
  EXPECT_FALSE(audit->refuted);
  EXPECT_LE(audit->estimate.eps_upper, options.epsilon);
  // AIM fills the per-spend rho ledger; the audit's budget reconciliation
  // depends on it ending exactly at rho_used.
  EXPECT_GT(audit->base_stats.size(), 0u);
}

TEST(AuditTest, SyntheticStatisticSeparatesUnderStrongBudget) {
  const Domain domain = Domain::WithSizes({3, 3, 3});
  const Workload workload = AllKWayWorkload(domain, 2);
  const MstMechanism mst = SmallMst();
  AuditOptions options = SmallAuditOptions();
  options.epsilon = 100.0;
  options.pairs = 12;
  options.statistic = AttackStatistic::kSyntheticCanaryLikelihood;
  const StatusOr<AuditResult> audit =
      RunAudit(mst, domain, workload, options);
  ASSERT_TRUE(audit.ok());
  // The canary runs assign the canary cell strictly more synthetic
  // likelihood on average.
  double base_mean = 0.0, canary_mean = 0.0;
  for (double s : audit->base_stats) base_mean += s;
  for (double s : audit->canary_stats) canary_mean += s;
  EXPECT_GT(canary_mean, base_mean);
}

}  // namespace
}  // namespace aim
