// Tests for the parallel runtime (src/parallel/): pool lifecycle,
// ParallelFor/Map/Reduce correctness against serial loops, exception and
// Status propagation, nested-call safety, and the subsystem's core
// contract — bitwise-identical results at every thread count, up to and
// including a full AIM run.

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/simulators.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "parallel/parallel.h"
#include "parallel/thread_pool.h"
#include "util/rng.h"

namespace aim {
namespace {

// Restores the automatic thread configuration when a test exits.
class ThreadConfigGuard {
 public:
  ~ThreadConfigGuard() { SetParallelThreads(0); }
};

TEST(ThreadPool, StartRunStop) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> ran{0};
  std::vector<char> seen(4, 0);
  pool.Dispatch([&](int participant) {
    ASSERT_GE(participant, 0);
    ASSERT_LT(participant, 4);
    seen[participant] = 1;
    ++ran;
  });
  EXPECT_EQ(ran.load(), 4);
  for (char s : seen) EXPECT_TRUE(s);
  // Destructor joins the workers; reaching the end without hanging is the
  // stop assertion.
}

TEST(ThreadPool, SingleThreadPoolOwnsNoWorkers) {
  ThreadPool pool(1);
  int ran = 0;
  pool.Dispatch([&](int participant) {
    EXPECT_EQ(participant, 0);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(Parallel, ForMatchesSerialLoop) {
  ThreadConfigGuard guard;
  SetParallelThreads(8);
  constexpr int64_t kN = 10000;
  std::vector<int64_t> out(kN, 0);
  ParallelFor(0, kN, 64, [&](int64_t i) { out[i] = i * i; });
  for (int64_t i = 0; i < kN; ++i) ASSERT_EQ(out[i], i * i);
}

TEST(Parallel, ForChunksCoverDisjointly) {
  ThreadConfigGuard guard;
  SetParallelThreads(5);
  constexpr int64_t kN = 1234;
  std::vector<std::atomic<int>> hits(kN);
  ParallelForChunks(0, kN, 97, [&](int64_t lo, int64_t hi, int64_t chunk) {
    EXPECT_EQ(lo, chunk * 97);
    for (int64_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int64_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(Parallel, MapPreservesIndexOrder) {
  ThreadConfigGuard guard;
  SetParallelThreads(8);
  std::vector<std::string> labels =
      ParallelMap(100, [](int64_t i) { return std::to_string(i); });
  ASSERT_EQ(labels.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) ASSERT_EQ(labels[i], std::to_string(i));
}

TEST(Parallel, ReduceBitwiseIdenticalAcrossThreadCounts) {
  ThreadConfigGuard guard;
  // Sum values spanning many magnitudes: any reordering of the additions
  // would change low-order bits.
  Rng rng(99);
  std::vector<double> values(50000);
  for (double& v : values) v = rng.Gaussian() * std::exp(20.0 * rng.Uniform());
  auto sum_with = [&](int threads) {
    SetParallelThreads(threads);
    return ParallelReduce(
        0, static_cast<int64_t>(values.size()), 1024, 0.0,
        [&](int64_t lo, int64_t hi) {
          double s = 0.0;
          for (int64_t i = lo; i < hi; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = sum_with(1);
  for (int threads : {2, 3, 8}) {
    double parallel = sum_with(threads);
    // Bitwise, not approximate: the ordered reduction makes the FP
    // operation sequence independent of the thread count.
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(Parallel, ExceptionFromLowestChunkPropagates) {
  ThreadConfigGuard guard;
  SetParallelThreads(8);
  auto run = [] {
    ParallelFor(0, 1000, 1, [](int64_t i) {
      if (i == 37 || i == 500 || i == 999) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
    });
  };
  try {
    run();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    // grain=1 makes chunk index == loop index; the lowest failure wins
    // regardless of which worker hit it first.
    EXPECT_STREQ(e.what(), "boom at 37");
  }
}

TEST(Parallel, StatusPropagatesFirstFailureByIndex) {
  ThreadConfigGuard guard;
  SetParallelThreads(8);
  Status status = ParallelForStatus(0, 1000, 7, [](int64_t i) {
    if (i >= 123) {
      return InvalidArgumentError("bad index " + std::to_string(i));
    }
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The failing chunk [119, 126) stops at its first failure, i = 123.
  EXPECT_EQ(status.message(), "bad index 123");
}

TEST(Parallel, OkStatusWhenNoFailure) {
  ThreadConfigGuard guard;
  SetParallelThreads(4);
  Status status =
      ParallelForStatus(0, 100, 10, [](int64_t) { return Status::Ok(); });
  EXPECT_TRUE(status.ok());
}

TEST(Parallel, NestedCallsRunInlineAndStayCorrect) {
  ThreadConfigGuard guard;
  SetParallelThreads(4);
  constexpr int64_t kOuter = 16;
  constexpr int64_t kInner = 500;
  std::vector<int64_t> sums(kOuter, 0);
  ParallelFor(0, kOuter, 1, [&](int64_t o) {
    EXPECT_TRUE(parallel_internal::InParallelRegion());
    // The nested loop must detect the region and run serially inline.
    int64_t local = 0;
    ParallelFor(0, kInner, 50, [&](int64_t i) { local += i; });
    sums[o] = local;
  });
  for (int64_t o = 0; o < kOuter; ++o) {
    ASSERT_EQ(sums[o], kInner * (kInner - 1) / 2);
  }
  EXPECT_FALSE(parallel_internal::InParallelRegion());
}

TEST(Parallel, EmptyAndSingleElementRanges) {
  ThreadConfigGuard guard;
  SetParallelThreads(8);
  int ran = 0;
  ParallelFor(5, 5, 1, [&](int64_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  ParallelFor(5, 6, 1, [&](int64_t i) {
    EXPECT_EQ(i, 5);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(Parallel, ForkRngStreamsDeterministicAndDistinct) {
  Rng a(42), b(42);
  std::vector<Rng> sa = ForkRngStreams(a, 8);
  std::vector<Rng> sb = ForkRngStreams(b, 8);
  ASSERT_EQ(sa.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sa[i].NextUint64(), sb[i].NextUint64()) << "stream " << i;
  }
  // Distinct streams diverge.
  Rng c(42);
  std::vector<Rng> sc = ForkRngStreams(c, 2);
  EXPECT_NE(sc[0].NextUint64(), sc[1].NextUint64());
}

TEST(Parallel, SetParallelThreadsRebuildsPool) {
  ThreadConfigGuard guard;
  SetParallelThreads(3);
  EXPECT_EQ(ParallelThreads(), 3);
  EXPECT_EQ(GlobalThreadPool().num_threads(), 3);
  SetParallelThreads(6);
  EXPECT_EQ(GlobalThreadPool().num_threads(), 6);
}

// The tentpole acceptance criterion: AIM with the same seed produces an
// identical synthetic dataset and per-round selection log at threads=1 and
// threads=8.
TEST(AimDeterminism, IdenticalOutputAcrossThreadCounts) {
  ThreadConfigGuard guard;
  Rng data_rng(7);
  Domain domain = Domain::WithSizes({4, 3, 5, 2, 4, 3});
  Dataset data = SampleRandomBayesNet(domain, 2000, 2, 0.4, data_rng);
  Workload workload = AllKWayWorkload(domain, 2);

  AimOptions options;
  options.max_size_mb = 0.5;
  options.round_estimation.max_iters = 10;
  options.final_estimation.max_iters = 25;
  options.record_candidates = true;
  const AimMechanism mechanism(options);

  auto run = [&](int threads) {
    SetParallelThreads(threads);
    Rng rng(123456);
    return mechanism.Run(data, workload, /*rho=*/0.3, rng);
  };
  MechanismResult serial = run(1);
  MechanismResult parallel = run(8);

  // Per-round selection log: same marginals selected with the same noise
  // scales and scores-derived metadata in the same order.
  ASSERT_EQ(serial.rounds, parallel.rounds);
  ASSERT_EQ(serial.log.rounds.size(), parallel.log.rounds.size());
  for (size_t t = 0; t < serial.log.rounds.size(); ++t) {
    const RoundInfo& a = serial.log.rounds[t];
    const RoundInfo& b = parallel.log.rounds[t];
    EXPECT_EQ(a.selected, b.selected) << "round " << t;
    EXPECT_EQ(a.sigma, b.sigma) << "round " << t;
    EXPECT_EQ(a.epsilon, b.epsilon) << "round " << t;
    EXPECT_EQ(a.estimated_error_on_selected, b.estimated_error_on_selected)
        << "round " << t;
    EXPECT_EQ(a.sensitivity, b.sensitivity) << "round " << t;
    EXPECT_EQ(a.selected_candidate, b.selected_candidate) << "round " << t;
    ASSERT_EQ(a.candidates.size(), b.candidates.size()) << "round " << t;
  }

  // Measurements: identical noisy values (the RNG stream never depends on
  // the thread count).
  ASSERT_EQ(serial.log.measurements.size(), parallel.log.measurements.size());
  for (size_t m = 0; m < serial.log.measurements.size(); ++m) {
    EXPECT_EQ(serial.log.measurements[m].attrs,
              parallel.log.measurements[m].attrs);
    EXPECT_EQ(serial.log.measurements[m].values,
              parallel.log.measurements[m].values);
  }

  // Synthetic dataset: bitwise-identical records (what WriteCsv would
  // serialize).
  ASSERT_EQ(serial.synthetic.num_records(), parallel.synthetic.num_records());
  const int d = domain.num_attributes();
  for (int attr = 0; attr < d; ++attr) {
    ASSERT_EQ(serial.synthetic.column(attr), parallel.synthetic.column(attr))
        << "attribute " << attr;
  }
  EXPECT_EQ(serial.total_estimate, parallel.total_estimate);
  EXPECT_EQ(serial.rho_used, parallel.rho_used);
}

}  // namespace
}  // namespace aim
