#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "data/simulators.h"
#include "marginal/attr_set.h"
#include "marginal/marginal.h"
#include "marginal/workload.h"
#include "util/math.h"
#include "util/rng.h"

namespace aim {
namespace {

// ------------------------------------------------------------- AttrSet ----

TEST(AttrSetTest, SortsAndDeduplicates) {
  AttrSet s({3, 1, 3, 2});
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.attrs(), (std::vector<int>{1, 2, 3}));
}

TEST(AttrSetTest, SetOperations) {
  AttrSet a({0, 1, 2}), b({1, 2, 3});
  EXPECT_EQ(a.Union(b), AttrSet({0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), AttrSet({1, 2}));
  EXPECT_EQ(a.Difference(b), AttrSet({0}));
  EXPECT_EQ(a.IntersectionSize(b), 2);
}

TEST(AttrSetTest, SubsetAndContains) {
  AttrSet a({1, 3}), b({0, 1, 2, 3});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(AttrSet{}.IsSubsetOf(a));
  EXPECT_TRUE(a.Contains(3));
  EXPECT_FALSE(a.Contains(2));
}

TEST(AttrSetTest, ToStringAndHash) {
  AttrSet a({0, 3, 7});
  EXPECT_EQ(a.ToString(), "{0,3,7}");
  EXPECT_EQ(a.Hash(), AttrSet({7, 3, 0}).Hash());
  EXPECT_NE(a.Hash(), AttrSet({0, 3}).Hash());
}

// ------------------------------------------------------------ Marginal ----

TEST(MarginalTest, CountsMatchBruteForce) {
  Rng rng(1);
  Domain domain = Domain::WithSizes({3, 2, 4});
  Dataset data = SampleRandomBayesNet(domain, 1000, 2, 0.5, rng);
  AttrSet r({0, 2});
  std::vector<double> marginal = ComputeMarginal(data, r);
  // Brute force via map.
  std::map<std::pair<int, int>, int> counts;
  for (int64_t row = 0; row < data.num_records(); ++row) {
    ++counts[{data.value(row, 0), data.value(row, 2)}];
  }
  MarginalIndexer indexer(domain, r);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      std::vector<int> tuple = {i, j};
      double expected = counts[std::make_pair(i, j)];
      EXPECT_DOUBLE_EQ(marginal[indexer.IndexOfTuple(tuple)], expected);
    }
  }
}

TEST(MarginalTest, SumsToRecordCount) {
  Rng rng(2);
  Domain domain = Domain::WithSizes({2, 2, 2, 5});
  Dataset data = SampleRandomBayesNet(domain, 777, 2, 0.3, rng);
  for (const AttrSet& r : {AttrSet({0}), AttrSet({0, 3}), AttrSet({1, 2, 3})}) {
    std::vector<double> m = ComputeMarginal(data, r);
    EXPECT_DOUBLE_EQ(std::accumulate(m.begin(), m.end(), 0.0), 777.0);
  }
}

TEST(MarginalTest, WeightedMarginal) {
  Domain domain = Domain::WithSizes({2});
  Dataset data(domain);
  data.AppendRecord({0});
  data.AppendRecord({1});
  data.AppendRecord({1});
  std::vector<double> m = ComputeMarginal(data, AttrSet({0}), 0.5);
  EXPECT_DOUBLE_EQ(m[0], 0.5);
  EXPECT_DOUBLE_EQ(m[1], 1.0);
}

TEST(MarginalTest, MarginalSizeMatchesIndexer) {
  Domain domain = Domain::WithSizes({2, 3, 4, 5});
  AttrSet r({1, 3});
  EXPECT_EQ(MarginalSize(domain, r), 15);
  MarginalIndexer indexer(domain, r);
  EXPECT_EQ(indexer.size(), 15);
}

TEST(MarginalTest, IndexerTupleRoundTrip) {
  Domain domain = Domain::WithSizes({2, 3, 4});
  MarginalIndexer indexer(domain, AttrSet({0, 1, 2}));
  for (int64_t i = 0; i < indexer.size(); ++i) {
    EXPECT_EQ(indexer.IndexOfTuple(indexer.TupleOfIndex(i)), i);
  }
}

TEST(MarginalTest, ConsistencyAcrossProjections) {
  // Summing the {0,1} marginal over attribute 1 gives the {0} marginal.
  Rng rng(3);
  Domain domain = Domain::WithSizes({3, 4});
  Dataset data = SampleRandomBayesNet(domain, 500, 1, 0.5, rng);
  std::vector<double> joint = ComputeMarginal(data, AttrSet({0, 1}));
  std::vector<double> m0 = ComputeMarginal(data, AttrSet({0}));
  for (int i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 4; ++j) sum += joint[i * 4 + j];
    EXPECT_DOUBLE_EQ(sum, m0[i]);
  }
}

// ------------------------------------------------------------ Workload ----

TEST(WorkloadTest, AllKWayCount) {
  Domain domain = Domain::WithSizes(std::vector<int>(6, 2));
  Workload w = AllKWayWorkload(domain, 3);
  EXPECT_EQ(w.num_queries(), 20);  // C(6,3)
  std::set<AttrSet> distinct;
  for (const auto& q : w.queries()) {
    EXPECT_EQ(q.attrs.size(), 3);
    distinct.insert(q.attrs);
  }
  EXPECT_EQ(distinct.size(), 20u);
}

TEST(WorkloadTest, TargetWorkloadContainsTarget) {
  Domain domain = Domain::WithSizes(std::vector<int>(6, 2));
  Workload w = TargetWorkload(domain, 3, 2);
  EXPECT_EQ(w.num_queries(), 10);  // C(5,2)
  for (const auto& q : w.queries()) {
    EXPECT_TRUE(q.attrs.Contains(2));
  }
}

TEST(WorkloadTest, SkewedWorkloadDeterministicAndSkewed) {
  Domain domain = Domain::WithSizes(std::vector<int>(15, 4));
  Workload a = SkewedWorkload(domain, 3, 64, 7);
  Workload b = SkewedWorkload(domain, 3, 64, 7);
  ASSERT_EQ(a.num_queries(), 64);
  ASSERT_EQ(b.num_queries(), 64);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.query(i).attrs, b.query(i).attrs);
  }
  // Skew: attribute participation counts should be very unequal.
  std::vector<int> participation(15, 0);
  for (const auto& q : a.queries()) {
    for (int attr : q.attrs) ++participation[attr];
  }
  int max_count = *std::max_element(participation.begin(), participation.end());
  int min_count = *std::min_element(participation.begin(), participation.end());
  EXPECT_GT(max_count, 3 * std::max(1, min_count));
}

TEST(WorkloadTest, SkewedWorkloadDistinctQueries) {
  Domain domain = Domain::WithSizes(std::vector<int>(10, 2));
  Workload w = SkewedWorkload(domain, 3, 50, 9);
  std::set<AttrSet> distinct;
  for (const auto& q : w.queries()) distinct.insert(q.attrs);
  EXPECT_EQ(static_cast<int>(distinct.size()), w.num_queries());
}

TEST(WorkloadTest, SkewedWorkloadSaturatesSmallDomains) {
  // Only C(4,3)=4 triples exist; asking for 256 must terminate with 4.
  Domain domain = Domain::WithSizes(std::vector<int>(4, 2));
  Workload w = SkewedWorkload(domain, 3, 256, 11);
  EXPECT_EQ(w.num_queries(), 4);
}

TEST(WorkloadTest, DownwardClosure) {
  Workload w;
  w.Add(AttrSet({0, 1, 2}));
  w.Add(AttrSet({2, 3}));
  std::vector<AttrSet> closure = DownwardClosure(w);
  std::set<AttrSet> expected = {
      AttrSet({0}),       AttrSet({1}),    AttrSet({2}),    AttrSet({3}),
      AttrSet({0, 1}),    AttrSet({0, 2}), AttrSet({1, 2}), AttrSet({2, 3}),
      AttrSet({0, 1, 2})};
  EXPECT_EQ(std::set<AttrSet>(closure.begin(), closure.end()), expected);
}

TEST(WorkloadTest, WorkloadWeightFormula) {
  // w_r = sum_s c_s |r ∩ s|.
  Workload w;
  w.Add(AttrSet({0, 1, 2}), 1.0);
  w.Add(AttrSet({2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(WorkloadWeight(w, AttrSet({2})), 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(WorkloadWeight(w, AttrSet({0, 1})), 2.0);
  EXPECT_DOUBLE_EQ(WorkloadWeight(w, AttrSet({2, 3})), 1.0 + 4.0);
  EXPECT_DOUBLE_EQ(WorkloadWeight(w, AttrSet({4})), 0.0);
}

TEST(WorkloadTest, CoveredBy) {
  Workload w;
  w.Add(AttrSet({0, 1}));
  EXPECT_TRUE(w.CoveredBy(AttrSet({0, 1, 2})));
  EXPECT_FALSE(w.CoveredBy(AttrSet({0, 2})));
}

// The paper's workloads: ALL-3WAY over each simulated dataset produces
// C(d,3) queries. Parameterized over the six datasets.
class PaperWorkloadTest : public ::testing::TestWithParam<PaperDataset> {};

TEST_P(PaperWorkloadTest, All3WayHasBinomialCount) {
  SimulatorOptions options;
  options.record_scale = 0.001;
  options.min_records = 50;
  SimulatedData sim = MakePaperDataset(GetParam(), options);
  int d = sim.data.domain().num_attributes();
  Workload w = AllKWayWorkload(sim.data.domain(), 3);
  EXPECT_EQ(w.num_queries(), d * (d - 1) * (d - 2) / 6);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, PaperWorkloadTest,
                         ::testing::ValuesIn(AllPaperDatasets()));

}  // namespace
}  // namespace aim
