// Cross-cutting properties tied to specific claims in the paper: privacy
// budgets are never exceeded at any epsilon, AIM's round count respects the
// T = 16d sizing bound, the PrivSyn allocation spends exactly rho, workload
// combinatorics match the closed forms, and the bound machinery picks the
// correct rounds.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/simulators.h"
#include "dp/accountant.h"
#include "eval/error.h"
#include "eval/experiment.h"
#include "marginal/marginal.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "mechanisms/registry.h"
#include "uncertainty/bounds.h"
#include "uncertainty/subsampling.h"
#include "util/rng.h"

namespace aim {
namespace {

const Dataset& PropData() {
  static const Dataset* data = [] {
    Rng rng(4242);
    Domain domain = Domain::WithSizes({2, 3, 2, 2, 4});
    return new Dataset(SampleRandomBayesNet(domain, 2500, 2, 0.4, rng));
  }();
  return *data;
}

RegistryOptions FastOptions() {
  RegistryOptions o;
  o.round_iters = 20;
  o.final_iters = 50;
  o.rp_rows = 30;
  o.rp_iters = 20;
  o.mwem_rounds = 4;
  return o;
}

// ---------------------------------------- budget safety across epsilons ---

struct BudgetCase {
  std::string mechanism;
  double epsilon;
};

class BudgetSweepTest : public ::testing::TestWithParam<BudgetCase> {};

TEST_P(BudgetSweepTest, NeverOverspends) {
  const BudgetCase& c = GetParam();
  auto mechanism = MechanismByName(c.mechanism, FastOptions());
  ASSERT_NE(mechanism, nullptr);
  const double rho = CdpRho(c.epsilon, 1e-9);
  Workload workload = AllKWayWorkload(PropData().domain(), 3);
  Rng rng(11);
  MechanismResult result = mechanism->Run(PropData(), workload, rho, rng);
  EXPECT_LE(result.rho_used, rho * (1.0 + 1e-6))
      << c.mechanism << " at eps=" << c.epsilon;
  EXPECT_GT(result.rho_used, 0.0);
}

std::vector<BudgetCase> BudgetCases() {
  std::vector<BudgetCase> cases;
  for (const std::string& name :
       {"AIM", "MWEM+PGM", "MST", "PrivBayes+PGM", "Independent", "Gaussian",
        "PrivMRF", "RAP", "GEM"}) {
    for (double eps : {0.01, 1.0, 100.0}) {
      cases.push_back({name, eps});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, BudgetSweepTest,
                         ::testing::ValuesIn(BudgetCases()),
                         [](const auto& info) {
                           std::string name = info.param.mechanism + "_eps" +
                                              FormatG(info.param.epsilon);
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return name;
                         });

// --------------------------------------------------- AIM sizing bounds ----

TEST(AimPropertyTest, RoundCountBoundedBySizingParameter) {
  AimOptions options;
  options.round_estimation.max_iters = 20;
  options.final_estimation.max_iters = 40;
  options.record_candidates = false;
  AimMechanism aim(options);
  Workload workload = AllKWayWorkload(PropData().domain(), 3);
  const int d = PropData().domain().num_attributes();
  for (double eps : {0.1, 10.0}) {
    Rng rng(21);
    MechanismResult result =
        aim.Run(PropData(), workload, CdpRho(eps, 1e-9), rng);
    // T = 16d sizes sigma_0; annealing only shortens the run. Allow the
    // final exact-exhaustion round on top.
    EXPECT_LE(result.rounds, 16 * d + 1);
  }
}

TEST(AimPropertyTest, SigmaAnnealsMonotonically) {
  AimOptions options;
  options.round_estimation.max_iters = 20;
  options.final_estimation.max_iters = 40;
  options.record_candidates = false;
  AimMechanism aim(options);
  Workload workload = AllKWayWorkload(PropData().domain(), 3);
  Rng rng(22);
  MechanismResult result =
      aim.Run(PropData(), workload, CdpRho(3.0, 1e-9), rng);
  ASSERT_GE(result.log.rounds.size(), 2u);
  for (size_t t = 1; t < result.log.rounds.size(); ++t) {
    EXPECT_LE(result.log.rounds[t].sigma,
              result.log.rounds[t - 1].sigma * (1.0 + 1e-9))
        << "sigma increased at round " << t;
  }
}

TEST(AimPropertyTest, MeasurementsMatchLoggedRounds) {
  AimOptions options;
  options.round_estimation.max_iters = 20;
  options.final_estimation.max_iters = 40;
  AimMechanism aim(options);
  Workload workload = AllKWayWorkload(PropData().domain(), 3);
  Rng rng(23);
  MechanismResult result = aim.Run(PropData(), workload, 0.2, rng);
  const int d = PropData().domain().num_attributes();
  // d initialization measurements + one per round, in order.
  ASSERT_EQ(result.log.measurements.size(),
            static_cast<size_t>(d) + result.log.rounds.size());
  for (size_t t = 0; t < result.log.rounds.size(); ++t) {
    EXPECT_EQ(result.log.measurements[d + t].attrs,
              result.log.rounds[t].selected);
    EXPECT_DOUBLE_EQ(result.log.measurements[d + t].sigma,
                     result.log.rounds[t].sigma);
  }
}

// ------------------------------------------------ allocation identities ---

TEST(GaussianAllocationTest, PrivSynBudgetSpendsExactlyRho) {
  // sum_i 1/(2 sigma_i^2) with sigma_i^2 = (sum_j n_j^{2/3}) /
  // (2 rho n_i^{2/3}) must equal rho for any workload.
  Domain domain = PropData().domain();
  Workload workload = AllKWayWorkload(domain, 3);
  const double rho = 0.37;
  double denom = 0.0;
  for (const auto& q : workload.queries()) {
    denom += std::pow(
        static_cast<double>(MarginalSize(domain, q.attrs)), 2.0 / 3.0);
  }
  double spent = 0.0;
  for (const auto& q : workload.queries()) {
    double n23 = std::pow(
        static_cast<double>(MarginalSize(domain, q.attrs)), 2.0 / 3.0);
    double sigma_sq = denom / (2.0 * rho * n23);
    spent += 1.0 / (2.0 * sigma_sq);
  }
  EXPECT_NEAR(spent, rho, 1e-9);
}

// ------------------------------------------------- workload identities ----

TEST(WorkloadPropertyTest, DownwardClosureSizeOfAllKWay) {
  for (int d : {5, 8, 12}) {
    Domain domain = Domain::WithSizes(std::vector<int>(d, 2));
    Workload w = AllKWayWorkload(domain, 3);
    // |W+| = C(d,3) + C(d,2) + C(d,1).
    int expected = d * (d - 1) * (d - 2) / 6 + d * (d - 1) / 2 + d;
    EXPECT_EQ(static_cast<int>(DownwardClosure(w).size()), expected);
  }
}

TEST(WorkloadPropertyTest, WeightsAreMonotoneUnderInclusion) {
  // w_r = sum_s c_s |r ∩ s| can only grow when r grows.
  Domain domain = Domain::WithSizes(std::vector<int>(6, 2));
  Workload w = AllKWayWorkload(domain, 3);
  for (const AttrSet& r : DownwardClosure(w)) {
    if (r.size() >= 3) continue;
    for (int extra = 0; extra < 6; ++extra) {
      if (r.Contains(extra)) continue;
      AttrSet bigger = r.Union(AttrSet({extra}));
      EXPECT_GE(WorkloadWeight(w, bigger), WorkloadWeight(w, r));
    }
  }
}

TEST(WorkloadPropertyTest, PaperTargetsAreThePredictionAttributes) {
  SimulatorOptions options;
  options.record_scale = 0.001;
  options.min_records = 50;
  SimulatedData adult = MakePaperDataset(PaperDataset::kAdult, options);
  EXPECT_EQ(adult.data.domain().name(adult.target_attribute), "income");
  SimulatedData titanic = MakePaperDataset(PaperDataset::kTitanic, options);
  EXPECT_EQ(titanic.data.domain().name(titanic.target_attribute),
            "survived");
}

// ----------------------------------------------------- bound plumbing -----

TEST(BoundPlumbingTest, UnsupportedBoundUsesLastCandidateRound) {
  Domain domain = Domain::WithSizes({2, 2, 2});
  MechanismResult result;
  // Round 0: {0,1} is a candidate. Round 1: it is not.
  RoundInfo round0;
  round0.selected = AttrSet({0});
  round0.sigma = 1.0;
  round0.epsilon = 0.5;
  round0.sensitivity = 1.0;
  round0.estimated_error_on_selected = 5.0;
  round0.candidates = {{AttrSet({0}), 1.0, 2}, {AttrSet({0, 1}), 2.0, 4}};
  RoundInfo round1 = round0;
  round1.candidates = {{AttrSet({0}), 1.0, 2}};
  result.log.rounds = {round0, round1};
  result.log.measurements.push_back({AttrSet({0}), {1.0, 1.0}, 1.0});
  MarkovRandomField model(domain, {AttrSet({0})});
  model.set_total(2.0);
  model.Calibrate();
  result.final_model = model;
  result.penultimate_model = std::move(model);

  Dataset synth(domain);
  synth.AppendRecord({0, 0, 0});
  synth.AppendRecord({1, 1, 1});
  UncertaintyQuantifier uq(domain, result);
  auto bound = uq.BoundFor(AttrSet({0, 1}), synth);
  ASSERT_TRUE(bound.has_value());
  EXPECT_FALSE(bound->supported);
  EXPECT_EQ(bound->round, 0);
  // {1,2} was never a candidate and is unsupported: no bound.
  EXPECT_FALSE(uq.BoundFor(AttrSet({1, 2}), synth).has_value());
}

// ------------------------------------------------- subsampling extras -----

TEST(SubsamplingPropertyTest, FractionMonotoneInTargetError) {
  Rng rng(31);
  Domain domain = Domain::WithSizes({3, 3});
  Dataset data = SampleRandomBayesNet(domain, 2000, 1, 0.5, rng);
  Workload workload = AllKWayWorkload(domain, 2);
  double prev = 1.1;
  for (double target : {0.01, 0.05, 0.2, 1.0}) {
    double fraction = MatchingSubsamplingFraction(data, workload, target);
    EXPECT_LE(fraction, prev + 1e-12);
    prev = fraction;
  }
}

TEST(SubsamplingPropertyTest, FullResampleStillHasError) {
  // Even K = N has positive expected error (resampling variance) — the
  // reason a mechanism can be better than fraction 1.0.
  Rng rng(32);
  Domain domain = Domain::WithSizes({4});
  Dataset data = SampleRandomBayesNet(domain, 500, 1, 0.5, rng);
  Workload workload = AllKWayWorkload(domain, 1);
  EXPECT_GT(ExpectedSubsamplingWorkloadError(data, workload, 500), 0.0);
}

}  // namespace
}  // namespace aim
