// Tests for the observability subsystem (src/obs/): metrics registry,
// trace events/sinks, JSONL well-formedness, thread safety under the
// work-stealing pool (exercised by the TSan CI job), and the determinism
// contract: enabling tracing/metrics never changes mechanism output.

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/simulators.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "parallel/parallel.h"
#include "robust/fault.h"
#include "util/rng.h"

namespace aim {
namespace {

// ------------------------------------------------ minimal JSON checker ----
//
// Parses one flat JSON object (no nesting below one level of objects, which
// is all the metrics dump and the JSONL trace records use) and returns the
// raw value token per key. Fails the test on malformed input.

struct FlatJson {
  bool ok = false;
  std::string error;
  // Raw value text per key; nested objects are recursed into with
  // "outer.inner" keys.
  std::map<std::string, std::string> values;
};

bool SkipWs(const std::string& s, size_t* i) {
  while (*i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[*i]))) {
    ++*i;
  }
  return *i < s.size();
}

bool ParseJsonString(const std::string& s, size_t* i, std::string* out) {
  if (*i >= s.size() || s[*i] != '"') return false;
  ++*i;
  out->clear();
  while (*i < s.size()) {
    char c = s[*i];
    if (c == '"') {
      ++*i;
      return true;
    }
    if (c == '\\') {
      ++*i;
      if (*i >= s.size()) return false;
      char e = s[*i];
      if (e == 'u') {
        if (*i + 4 >= s.size()) return false;
        for (int k = 1; k <= 4; ++k) {
          if (!std::isxdigit(static_cast<unsigned char>(s[*i + k]))) {
            return false;
          }
        }
        *i += 4;
        out->push_back('?');  // test only needs structural validity
      } else if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
                 e == 'n' || e == 'r' || e == 't') {
        out->push_back(e);
      } else {
        return false;
      }
      ++*i;
      continue;
    }
    if (static_cast<unsigned char>(c) < 0x20) return false;  // unescaped ctl
    out->push_back(c);
    ++*i;
  }
  return false;
}

bool ParseJsonScalar(const std::string& s, size_t* i, std::string* out) {
  out->clear();
  while (*i < s.size() && s[*i] != ',' && s[*i] != '}' &&
         !std::isspace(static_cast<unsigned char>(s[*i]))) {
    out->push_back(s[*i]);
    ++*i;
  }
  if (out->empty()) return false;
  if (*out == "true" || *out == "false" || *out == "null") return true;
  // Must be a JSON number.
  char* end = nullptr;
  std::strtod(out->c_str(), &end);
  return end == out->c_str() + out->size();
}

bool ParseJsonObject(const std::string& s, size_t* i,
                     const std::string& prefix, FlatJson* out);

bool ParseJsonValue(const std::string& s, size_t* i, const std::string& key,
                    FlatJson* out) {
  if (!SkipWs(s, i)) return false;
  if (s[*i] == '"') {
    std::string value;
    if (!ParseJsonString(s, i, &value)) return false;
    out->values["\"" + key] = value;  // leading quote marks string-typed
    return true;
  }
  if (s[*i] == '{') return ParseJsonObject(s, i, key + ".", out);
  std::string value;
  if (!ParseJsonScalar(s, i, &value)) return false;
  out->values[key] = value;
  return true;
}

bool ParseJsonObject(const std::string& s, size_t* i,
                     const std::string& prefix, FlatJson* out) {
  if (!SkipWs(s, i) || s[*i] != '{') return false;
  ++*i;
  if (!SkipWs(s, i)) return false;
  if (s[*i] == '}') {
    ++*i;
    return true;
  }
  for (;;) {
    if (!SkipWs(s, i)) return false;
    std::string key;
    if (!ParseJsonString(s, i, &key)) return false;
    if (!SkipWs(s, i) || s[*i] != ':') return false;
    ++*i;
    if (!ParseJsonValue(s, i, prefix + key, out)) return false;
    if (!SkipWs(s, i)) return false;
    if (s[*i] == ',') {
      ++*i;
      continue;
    }
    if (s[*i] == '}') {
      ++*i;
      return true;
    }
    return false;
  }
}

FlatJson ParseFlat(const std::string& line) {
  FlatJson out;
  size_t i = 0;
  if (!ParseJsonObject(line, &i, "", &out)) {
    out.error = "malformed JSON at offset " + std::to_string(i) + ": " + line;
    return out;
  }
  SkipWs(line, &i);
  if (i != line.size()) {
    out.error = "trailing garbage: " + line;
    return out;
  }
  out.ok = true;
  return out;
}

double NumberOf(const FlatJson& json, const std::string& key) {
  auto it = json.values.find(key);
  EXPECT_TRUE(it != json.values.end()) << "missing numeric field " << key;
  return it == json.values.end() ? 0.0 : std::strtod(it->second.c_str(),
                                                     nullptr);
}

bool HasString(const FlatJson& json, const std::string& key) {
  return json.values.count("\"" + key) > 0;
}

bool HasBool(const FlatJson& json, const std::string& key) {
  auto it = json.values.find(key);
  return it != json.values.end() &&
         (it->second == "true" || it->second == "false");
}

// ----------------------------------------------------- shared test data ----

const Dataset& ObsData() {
  static const Dataset* data = [] {
    Rng rng(4242);
    Domain domain = Domain::WithSizes({2, 3, 4, 2, 3});
    return new Dataset(SampleRandomBayesNet(domain, 2000, 2, 0.3, rng));
  }();
  return *data;
}

Workload ObsWorkload() { return AllKWayWorkload(ObsData().domain(), 3); }

AimOptions FastAim() {
  AimOptions o;
  o.round_estimation.max_iters = 30;
  o.final_estimation.max_iters = 100;
  return o;
}

// A fixture that guarantees obs state is restored no matter how a test
// exits, so test order cannot leak enabled metrics into other suites.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetMetricsEnabled(false);
    SetGlobalTraceSink(nullptr);
    MetricsRegistry::Global().ResetForTesting();
  }
};

// ------------------------------------------------------------- metrics ----

TEST_F(ObsTest, CounterGaugeHistogramBasics) {
  Counter c;
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);

  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  Histogram h;
  EXPECT_EQ(h.count(), 0);
  h.Observe(1.0);
  h.Observe(3.0);
  h.Observe(0.25);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 4.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_NEAR(h.mean(), 4.25 / 3.0, 1e-15);
  int64_t bucketed = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) bucketed += h.bucket(b);
  EXPECT_EQ(bucketed, 3);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
}

TEST_F(ObsTest, RegistryHandlesAreStable) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.counter("obs_test.stable");
  a.Add(7);
  Counter& b = registry.counter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7);
  registry.ResetForTesting();
  EXPECT_EQ(a.value(), 0);  // same handle, zeroed in place
}

TEST_F(ObsTest, MetricsJsonIsWellFormed) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.counter("obs_test.count").Add(3);
  registry.gauge("obs_test.gauge").Set(1.5);
  Histogram& h = registry.histogram("obs_test.hist");
  h.Observe(2.0);
  h.Observe(4.0);
  std::ostringstream out;
  registry.WriteJson(out);
  FlatJson json = ParseFlat(out.str());
  ASSERT_TRUE(json.ok) << json.error;
  EXPECT_EQ(NumberOf(json, "counters.obs_test.count"), 3.0);
  EXPECT_EQ(NumberOf(json, "gauges.obs_test.gauge"), 1.5);
  EXPECT_EQ(NumberOf(json, "histograms.obs_test.hist.count"), 2.0);
  EXPECT_EQ(NumberOf(json, "histograms.obs_test.hist.sum"), 6.0);
  EXPECT_EQ(NumberOf(json, "histograms.obs_test.hist.mean"), 3.0);
}

TEST_F(ObsTest, EmptyHistogramJsonUsesNull) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.histogram("obs_test.empty");
  std::ostringstream out;
  registry.WriteJson(out);
  FlatJson json = ParseFlat(out.str());
  ASSERT_TRUE(json.ok) << json.error;
  EXPECT_EQ(json.values.at("histograms.obs_test.empty.min"), "null");
  EXPECT_EQ(json.values.at("histograms.obs_test.empty.max"), "null");
}

// --------------------------------------------------------------- traces ----

TEST_F(ObsTest, TraceEventFieldAccess) {
  TraceEvent e("unit");
  e.Set("s", "hello").Set("d", 1.5).Set("i", int64_t{7}).Set("b", true);
  EXPECT_EQ(e.GetString("s"), "hello");
  EXPECT_DOUBLE_EQ(e.GetDouble("d"), 1.5);
  EXPECT_EQ(e.GetInt("i"), 7);
  EXPECT_TRUE(e.GetBool("b"));
  EXPECT_EQ(e.Find("missing"), nullptr);
}

TEST_F(ObsTest, TraceEventJsonEscapesAndParses) {
  TraceEvent e("unit");
  e.Set("tricky", "quote\" backslash\\ newline\n tab\t ctl\x01 end")
      .Set("nan", std::nan(""))
      .Set("inf", std::numeric_limits<double>::infinity())
      .Set("neg", int64_t{-12})
      .Set("flag", false);
  FlatJson json = ParseFlat(e.ToJson());
  ASSERT_TRUE(json.ok) << json.error;
  EXPECT_TRUE(HasString(json, "tricky"));
  // Non-finite doubles must degrade to null, not break the JSON.
  EXPECT_EQ(json.values.at("nan"), "null");
  EXPECT_EQ(json.values.at("inf"), "null");
  EXPECT_EQ(NumberOf(json, "neg"), -12.0);
  EXPECT_TRUE(HasBool(json, "flag"));
}

TEST_F(ObsTest, TraceEnabledTracksSinkInstallation) {
  EXPECT_FALSE(TraceEnabled());
  MemoryTraceSink sink;
  {
    ScopedTraceSink scoped(&sink);
    EXPECT_TRUE(TraceEnabled());
    EmitTrace(TraceEvent("unit").Set("x", int64_t{1}));
  }
  EXPECT_FALSE(TraceEnabled());
  EmitTrace(TraceEvent("dropped"));  // no sink: must be a no-op
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].type(), "unit");
}

TEST_F(ObsTest, JsonlSinkWritesOneValidObjectPerLine) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  sink.Emit(TraceEvent("a").Set("x", 1.5));
  sink.Emit(TraceEvent("b").Set("y", "z"));
  sink.Flush();
  std::istringstream lines(out.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    FlatJson json = ParseFlat(line);
    ASSERT_TRUE(json.ok) << json.error;
    EXPECT_TRUE(HasString(json, "type"));
    ++n;
  }
  EXPECT_EQ(n, 2);
}

TEST_F(ObsTest, JsonlSinkOpenFailureIsWarnedCountedAndSafe) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& open_failures = registry.counter("obs_sink_open_failures");
  const int64_t before = open_failures.value();

  JsonlTraceSink sink("/nonexistent_dir_for_obs_test/trace.jsonl");
  EXPECT_FALSE(sink.ok());
  EXPECT_EQ(open_failures.value(), before + 1);
  Status status = sink.status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cannot open"), std::string::npos)
      << status.ToString();
  // Emitting into a dead sink is a silent no-op, never a crash.
  sink.Emit(TraceEvent("dropped").Set("x", int64_t{1}));
  sink.Flush();
}

TEST_F(ObsTest, JsonlSinkWriteFailureIsCountedAndReported) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& write_failures = registry.counter("obs_sink_write_failures");
  const int64_t before = write_failures.value();

  std::ofstream dead;  // never opened: every write sets failbit
  JsonlTraceSink sink(dead);
  EXPECT_TRUE(sink.ok());  // healthy until the first write fails
  sink.Emit(TraceEvent("a").Set("x", int64_t{1}));
  sink.Emit(TraceEvent("b").Set("x", int64_t{2}));
  EXPECT_FALSE(sink.ok());
  EXPECT_EQ(write_failures.value(), before + 2);
  Status status = sink.status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("lost"), std::string::npos)
      << status.ToString();
}

TEST_F(ObsTest, JsonlSinkRetriesPastATransientWriteFault) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const int64_t failures_before =
      registry.counter("obs_sink_write_failures").value();
  const int64_t attempts_before =
      registry.counter("robust.retry.attempts").value();
  const int64_t successes_before =
      registry.counter("robust.retry.successes").value();

  std::ostringstream out;
  JsonlTraceSink sink(out);
  ScopedFaults faults("trace_write:n=1");  // first write attempt fails
  sink.Emit(TraceEvent("recovered").Set("x", int64_t{1}));

  // The retry wrote the line exactly once; nothing was lost.
  EXPECT_TRUE(sink.ok());
  const std::string written = out.str();
  EXPECT_NE(written.find("\"recovered\""), std::string::npos) << written;
  EXPECT_EQ(written.find("\"recovered\""),
            written.rfind("\"recovered\""));
  EXPECT_EQ(registry.counter("obs_sink_write_failures").value(),
            failures_before);
  EXPECT_EQ(registry.counter("robust.retry.attempts").value(),
            attempts_before + 1);
  EXPECT_EQ(registry.counter("robust.retry.successes").value(),
            successes_before + 1);
}

TEST_F(ObsTest, JsonlSinkPersistentWriteFaultExhaustsAndLosesOneEvent) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const int64_t failures_before =
      registry.counter("obs_sink_write_failures").value();
  const int64_t exhausted_before =
      registry.counter("robust.retry.exhausted").value();

  std::ostringstream out;
  JsonlTraceSink sink(out);
  ScopedFaults faults("trace_write:after=0");  // every attempt fails
  sink.Emit(TraceEvent("doomed").Set("x", int64_t{1}));

  // Retries exhausted: exactly ONE lost event (not one per attempt), the
  // sink reports it, and nothing reached the stream.
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(out.str().empty()) << out.str();
  EXPECT_EQ(registry.counter("obs_sink_write_failures").value(),
            failures_before + 1);
  EXPECT_EQ(registry.counter("robust.retry.exhausted").value(),
            exhausted_before + 1);
  EXPECT_NE(sink.status().message().find("lost"), std::string::npos)
      << sink.status().ToString();
}

TEST_F(ObsTest, LapClockDisabledReadsNothing) {
  LapClock off(false);
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.Lap(), 0.0);
  LapClock on(true);
  EXPECT_TRUE(on.enabled());
  EXPECT_GE(on.Lap(), 0.0);
}

// -------------------------------------------------------- thread safety ----
//
// Hammer the registry and the trace sink from ParallelFor workers. Run by
// the TSan CI job; the assertions double as lost-update checks.

TEST_F(ObsTest, MetricsAndTracesSurviveParallelHammer) {
  SetMetricsEnabled(true);
  MemoryTraceSink sink;
  ScopedTraceSink scoped(&sink);
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.counter("obs_test.hammer.count");
  Histogram& hist = registry.histogram("obs_test.hammer.hist");
  Gauge& gauge = registry.gauge("obs_test.hammer.gauge");
  constexpr int64_t kIters = 20000;
  ParallelFor(0, kIters, 64, [&](int64_t i) {
    counter.Add(1);
    hist.Observe(static_cast<double>(i % 17) + 0.5);
    gauge.Set(static_cast<double>(i));
    // Registry lookup from workers must also be safe (mutex path).
    registry.counter("obs_test.hammer.lookup").Add(1);
    if (i % 100 == 0) {
      EmitTrace(TraceEvent("hammer").Set("i", i));
    }
  });
  EXPECT_EQ(counter.value(), kIters);
  EXPECT_EQ(registry.counter("obs_test.hammer.lookup").value(), kIters);
  EXPECT_EQ(hist.count(), kIters);
  EXPECT_DOUBLE_EQ(hist.min(), 0.5);
  EXPECT_DOUBLE_EQ(hist.max(), 16.5);
  EXPECT_EQ(sink.events().size(), static_cast<size_t>(kIters / 100));
}

TEST_F(ObsTest, ConcurrentJsonlEmissionStaysLineAtomic) {
  std::ostringstream out;
  {
    JsonlTraceSink sink(out);
    ScopedTraceSink scoped(&sink);
    ParallelFor(0, 2000, 16, [&](int64_t i) {
      EmitTrace(TraceEvent("line").Set("i", i).Set("payload", "x"));
    });
  }
  std::istringstream lines(out.str());
  std::string line;
  int n = 0;
  std::vector<bool> seen(2000, false);
  while (std::getline(lines, line)) {
    FlatJson json = ParseFlat(line);
    ASSERT_TRUE(json.ok) << json.error;
    const int64_t i = static_cast<int64_t>(NumberOf(json, "i"));
    ASSERT_GE(i, 0);
    ASSERT_LT(i, 2000);
    EXPECT_FALSE(seen[static_cast<size_t>(i)]);
    seen[static_cast<size_t>(i)] = true;
    ++n;
  }
  EXPECT_EQ(n, 2000);
}

// ------------------------------------------------- AIM round-level trace ----

TEST_F(ObsTest, AimOutputBitwiseIdenticalWithTracingOn) {
  AimMechanism aim(FastAim());
  const double rho = 0.2;

  Rng rng_off(77);
  MechanismResult off = aim.Run(ObsData(), ObsWorkload(), rho, rng_off);

  SetMetricsEnabled(true);
  MemoryTraceSink sink;
  ScopedTraceSink scoped(&sink);
  Rng rng_on(77);
  MechanismResult on = aim.Run(ObsData(), ObsWorkload(), rho, rng_on);

  EXPECT_GT(sink.events().size(), 0u);
  // Bitwise-identical outputs: same rounds, same measurements (exact
  // double equality), same synthetic records.
  EXPECT_EQ(on.rounds, off.rounds);
  EXPECT_EQ(on.rho_used, off.rho_used);
  EXPECT_EQ(on.total_estimate, off.total_estimate);
  ASSERT_EQ(on.log.measurements.size(), off.log.measurements.size());
  for (size_t m = 0; m < on.log.measurements.size(); ++m) {
    EXPECT_EQ(on.log.measurements[m].attrs, off.log.measurements[m].attrs);
    ASSERT_EQ(on.log.measurements[m].values.size(),
              off.log.measurements[m].values.size());
    for (size_t v = 0; v < on.log.measurements[m].values.size(); ++v) {
      EXPECT_EQ(on.log.measurements[m].values[v],
                off.log.measurements[m].values[v])
          << "measurement " << m << " cell " << v;
    }
  }
  ASSERT_EQ(on.synthetic.num_records(), off.synthetic.num_records());
  for (int64_t row = 0; row < on.synthetic.num_records(); ++row) {
    EXPECT_EQ(on.synthetic.Record(row), off.synthetic.Record(row))
        << "synthetic row " << row;
  }
}

TEST_F(ObsTest, AimEmitsOneSchemaValidRoundRecordPerRound) {
  MemoryTraceSink sink;
  ScopedTraceSink scoped(&sink);
  AimMechanism aim(FastAim());
  const double rho = 0.2;
  Rng rng(21);
  MechanismResult result = aim.Run(ObsData(), ObsWorkload(), rho, rng);

  EXPECT_EQ(sink.events_of_type("aim_start").size(), 1u);
  EXPECT_EQ(sink.events_of_type("aim_init").size(), 1u);
  EXPECT_EQ(sink.events_of_type("aim_finish").size(), 1u);
  auto rounds = sink.events_of_type("aim_round");
  ASSERT_EQ(rounds.size(), static_cast<size_t>(result.rounds));

  double prev_spent = 0.0;
  for (size_t t = 0; t < rounds.size(); ++t) {
    const TraceEvent& e = rounds[t];
    // Round indices are 1-based and contiguous.
    EXPECT_EQ(e.GetInt("round"), static_cast<int64_t>(t) + 1);
    // Schema: every per-round field the DP audit consumes must be present
    // with the right type, and the JSONL rendering must stay parseable.
    EXPECT_FALSE(e.GetString("selected").empty());
    EXPECT_GT(e.GetInt("cells"), 0);
    EXPECT_GT(e.GetDouble("sigma"), 0.0);
    EXPECT_GT(e.GetDouble("epsilon"), 0.0);
    EXPECT_GT(e.GetDouble("rho_round"), 0.0);
    EXPECT_GE(e.GetDouble("rho_remaining"), 0.0);
    EXPECT_GT(e.GetDouble("size_cap_mb"), 0.0);
    EXPECT_GT(e.GetInt("pool_size"), 0);
    EXPECT_GT(e.GetInt("candidates"), 0);
    EXPECT_LE(e.GetInt("candidates"), e.GetInt("pool_size"));
    EXPECT_EQ(e.GetString("cap_fallback"), "none");
    EXPECT_TRUE(std::isfinite(e.GetDouble("score")));
    EXPECT_GT(e.GetDouble("sensitivity"), 0.0);
    EXPECT_GE(e.GetDouble("estimated_error"), 0.0);
    EXPECT_GT(e.GetDouble("total_estimate"), 0.0);
    EXPECT_GE(e.GetInt("est_iterations"), 0);
    EXPECT_GE(e.GetInt("est_backtracks"), 0);
    EXPECT_TRUE(std::isfinite(e.GetDouble("est_objective")));
    (void)e.GetBool("est_converged");
    (void)e.GetBool("annealed");
    (void)e.GetBool("final_round_clamp");
    (void)e.GetBool("budget_clamped");
    EXPECT_GE(e.GetDouble("t_filter_s"), 0.0);
    EXPECT_GE(e.GetDouble("t_score_s"), 0.0);
    EXPECT_GE(e.GetDouble("t_measure_s"), 0.0);
    EXPECT_GE(e.GetDouble("t_estimate_s"), 0.0);
    // rho_spent is the running post-round ledger: strictly increasing.
    const double spent = e.GetDouble("rho_spent");
    EXPECT_GT(spent, prev_spent);
    EXPECT_NEAR(spent + e.GetDouble("rho_remaining"), rho, 1e-9 * rho);
    prev_spent = spent;
    FlatJson json = ParseFlat(e.ToJson());
    EXPECT_TRUE(json.ok) << json.error;
  }
}

TEST_F(ObsTest, PerRoundRhoSumsToBudget) {
  MemoryTraceSink sink;
  ScopedTraceSink scoped(&sink);
  AimMechanism aim(FastAim());
  const double rho = 0.25;
  Rng rng(33);
  MechanismResult result = aim.Run(ObsData(), ObsWorkload(), rho, rng);

  double sum = 0.0;
  for (const TraceEvent& e : sink.events_of_type("aim_init")) {
    sum += e.GetDouble("rho_round");
  }
  for (const TraceEvent& e : sink.events_of_type("aim_round")) {
    sum += e.GetDouble("rho_round");
  }
  // The traced per-round spends must reconcile exactly with the ledger,
  // and AIM's final-round rule exhausts the whole budget.
  EXPECT_NEAR(sum, result.rho_used, 1e-9 * rho);
  EXPECT_NEAR(sum, rho, 1e-9 * rho + 1e-12);
  auto finishes = sink.events_of_type("aim_finish");
  ASSERT_EQ(finishes.size(), 1u);
  EXPECT_EQ(finishes[0].GetInt("rounds"),
            static_cast<int64_t>(result.rounds));
  EXPECT_NEAR(finishes[0].GetDouble("rho_used"), result.rho_used, 0.0);
}

TEST(TraceRoutingTest, ThreadLocalSinkOverridesGlobal) {
  MemoryTraceSink global_sink, job_sink;
  ScopedTraceSink global_scope(&global_sink);
  EmitTrace(TraceEvent("before"));
  {
    ScopedThreadTraceSink thread_scope(&job_sink);
    EXPECT_TRUE(TraceEnabled());
    EXPECT_EQ(ThreadTraceSink(), &job_sink);
    EmitTrace(TraceEvent("inside"));
  }
  EXPECT_EQ(ThreadTraceSink(), nullptr);
  EmitTrace(TraceEvent("after"));
  // The override captured exactly the events emitted while active; the
  // global sink saw everything else and nothing of the job's.
  ASSERT_EQ(job_sink.events().size(), 1u);
  EXPECT_EQ(job_sink.events()[0].type(), "inside");
  ASSERT_EQ(global_sink.events().size(), 2u);
  EXPECT_EQ(global_sink.events()[0].type(), "before");
  EXPECT_EQ(global_sink.events()[1].type(), "after");
}

TEST(TraceRoutingTest, ThreadSinkEnablesTracingWithoutGlobal) {
  ASSERT_EQ(GlobalTraceSink(), nullptr);
  EXPECT_FALSE(TraceEnabled());
  MemoryTraceSink job_sink;
  ScopedThreadTraceSink scope(&job_sink);
  EXPECT_TRUE(TraceEnabled());
  EmitTrace(TraceEvent("routed"));
  ASSERT_EQ(job_sink.events().size(), 1u);
}

TEST(TraceRoutingTest, ConcurrentJobsDoNotInterleave) {
  // Two "jobs" on two threads, each with its own sink: every event lands in
  // its own job's buffer, never the other's — the aimd per-job isolation
  // contract.
  MemoryTraceSink sink_a, sink_b;
  auto run_job = [](MemoryTraceSink* sink, const char* tag, int events) {
    ScopedThreadTraceSink scope(sink);
    for (int i = 0; i < events; ++i) {
      TraceEvent event("job_event");
      event.Set("job", tag).Set("i", i);
      EmitTrace(event);
    }
  };
  std::thread a(run_job, &sink_a, "a", 200);
  std::thread b(run_job, &sink_b, "b", 300);
  a.join();
  b.join();
  ASSERT_EQ(sink_a.events().size(), 200u);
  ASSERT_EQ(sink_b.events().size(), 300u);
  for (const TraceEvent& event : sink_a.events()) {
    EXPECT_EQ(event.GetString("job"), "a");
  }
  for (const TraceEvent& event : sink_b.events()) {
    EXPECT_EQ(event.GetString("job"), "b");
  }
}

TEST(MetricLabelTest, ScopedNameCarriesLabel) {
  EXPECT_EQ(CurrentMetricLabel(), "");
  EXPECT_EQ(ScopedMetricName("dp.filter.spent"), "dp.filter.spent");
  {
    ScopedMetricLabel label("j-1");
    EXPECT_EQ(CurrentMetricLabel(), "j-1");
    EXPECT_EQ(ScopedMetricName("dp.filter.spent"),
              "dp.filter.spent{job=j-1}");
    {
      ScopedMetricLabel inner("j-2");
      EXPECT_EQ(ScopedMetricName("x"), "x{job=j-2}");
    }
    EXPECT_EQ(CurrentMetricLabel(), "j-1");
  }
  EXPECT_EQ(ScopedMetricName("dp.filter.spent"), "dp.filter.spent");
}

TEST(MetricLabelTest, ConcurrentJobsGetSeparateGauges) {
  SetMetricsEnabled(true);
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.ResetForTesting();
  // Two threads publish the same logical gauge under different job labels;
  // both final values must be readable afterwards (no clobbering), and the
  // unlabeled gauge must be untouched.
  auto publish = [&](const std::string& job, double value) {
    ScopedMetricLabel label(job);
    for (int i = 0; i <= 100; ++i) {
      registry.gauge(ScopedMetricName("test.labelled.spent"))
          .Set(value * i / 100.0);
    }
  };
  std::thread a(publish, "job-a", 1.0);
  std::thread b(publish, "job-b", 2.0);
  a.join();
  b.join();
  EXPECT_DOUBLE_EQ(
      registry.gauge("test.labelled.spent{job=job-a}").value(), 1.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge("test.labelled.spent{job=job-b}").value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.gauge("test.labelled.spent").value(), 0.0);
  SetMetricsEnabled(false);
}

TEST_F(ObsTest, AimPopulatesMetricsWhenEnabled) {
  SetMetricsEnabled(true);
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.ResetForTesting();
  AimMechanism aim(FastAim());
  Rng rng(55);
  MechanismResult result = aim.Run(ObsData(), ObsWorkload(), 0.1, rng);
  EXPECT_EQ(registry.counter("aim.runs").value(), 1);
  EXPECT_EQ(registry.counter("aim.rounds").value(), result.rounds);
  EXPECT_EQ(registry.histogram("aim.phase.estimate_seconds").count(),
            result.rounds);
  EXPECT_GT(registry.counter("pgm.estimation.calls").value(), 0);
  EXPECT_GT(registry.counter("pgm.jt.size_evals").value(), 0);
}

}  // namespace
}  // namespace aim
