// Quickstart: generate differentially private synthetic data with AIM.
//
// Builds a correlated demo dataset (a scaled-down simulated ADULT), defines
// the workload of all 3-way marginals, runs AIM at (epsilon=1, delta=1e-9),
// and reports the Definition-2 workload error plus a comparison against the
// Independent baseline. Writes the synthetic records to quickstart_synth.csv.

#include <iostream>

#include "data/csv.h"
#include "data/simulators.h"
#include "dp/accountant.h"
#include "eval/error.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "mechanisms/independent.h"
#include "util/rng.h"

int main() {
  using namespace aim;

  // 1. Data: any discrete Dataset works; here we simulate the paper's ADULT
  //    dataset at 5% scale (see data/simulators.h).
  SimulatorOptions sim_options;
  sim_options.record_scale = 0.05;
  SimulatedData sim = MakePaperDataset(PaperDataset::kAdult, sim_options);
  const Dataset& data = sim.data;
  std::cout << "dataset: " << sim.name << " with " << data.num_records()
            << " records over " << data.domain().num_attributes()
            << " attributes\n";

  // 2. Workload: the queries the synthetic data should preserve.
  Workload workload = AllKWayWorkload(data.domain(), 3);
  std::cout << "workload: " << workload.num_queries()
            << " three-way marginals\n";

  // 3. Privacy budget: (epsilon, delta)-DP converted to zCDP.
  const double epsilon = 1.0, delta = 1e-9;
  const double rho = CdpRho(epsilon, delta);
  std::cout << "privacy: eps=" << epsilon << " delta=" << delta
            << " -> rho=" << rho << " zCDP\n";

  // 4. Run AIM.
  AimOptions options;
  options.max_size_mb = 4.0;  // scaled-down model capacity for the demo
  options.round_estimation.max_iters = 50;
  options.final_estimation.max_iters = 300;
  AimMechanism aim(options);
  Rng rng(2022);
  MechanismResult result = aim.Run(data, workload, rho, rng);
  std::cout << "AIM: " << result.rounds << " rounds, "
            << result.log.measurements.size() << " measurements, "
            << result.seconds << "s, rho used " << result.rho_used << "\n";

  // 5. Evaluate.
  double aim_error = WorkloadError(data, result.synthetic, workload);
  Rng ind_rng(2022);
  IndependentMechanism independent;
  MechanismResult ind_result = independent.Run(data, workload, rho, ind_rng);
  double ind_error = WorkloadError(data, ind_result.synthetic, workload);
  std::cout << "workload error: AIM=" << aim_error
            << "  Independent=" << ind_error << "  (improvement "
            << ind_error / aim_error << "x)\n";

  // 6. Export the synthetic records.
  Status status = WriteCsv(result.synthetic, "quickstart_synth.csv");
  if (!status.ok()) {
    std::cerr << "write failed: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << result.synthetic.num_records()
            << " synthetic records to quickstart_synth.csv\n";
  return 0;
}
