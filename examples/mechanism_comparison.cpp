// Compares every implemented mechanism on one dataset and workload at a
// practical privacy level, printing a ranked leaderboard — a miniature of
// the paper's Figure 1 for a single panel.

#include <algorithm>
#include <iostream>

#include "data/simulators.h"
#include "eval/experiment.h"
#include "mechanisms/registry.h"

int main() {
  using namespace aim;

  SimulatorOptions sim_options;
  sim_options.record_scale = 0.05;
  SimulatedData sim = MakePaperDataset(PaperDataset::kNltcs, sim_options);
  Workload workload = AllKWayWorkload(sim.data.domain(), 3);
  const double epsilon = 10.0;

  RegistryOptions registry;
  registry.max_size_mb = 4.0;
  registry.round_iters = 50;
  registry.final_iters = 300;
  registry.rp_rows = 60;
  registry.rp_iters = 40;

  struct Row {
    std::string name;
    double error;
    double seconds;
  };
  std::vector<Row> rows;
  for (const auto& mechanism : StandardMechanisms(registry)) {
    TrialStats stats = RunTrials(*mechanism, sim.data, workload, epsilon,
                                 kPaperDelta, /*trials=*/2, /*seed=*/5);
    rows.push_back({mechanism->name(), stats.mean, stats.mean_seconds});
    std::cerr << "ran " << mechanism->name() << " (error " << stats.mean
              << ")\n";
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.error < b.error; });

  std::cout << "\n" << sim.name << ", ALL-3WAY, eps=" << epsilon << ":\n";
  TablePrinter table({"rank", "mechanism", "workload_error", "seconds"});
  for (size_t i = 0; i < rows.size(); ++i) {
    table.AddRow({std::to_string(i + 1), rows[i].name,
                  FormatG(rows[i].error), FormatG(rows[i].seconds, 3)});
  }
  table.Print(std::cout);
  return 0;
}
