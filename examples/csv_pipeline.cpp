// End-to-end file pipeline: raw CSV in, private synthetic CSV out.
//
// Demonstrates the Appendix-A preprocessing path on a real file: a raw CSV
// with mixed categorical/numerical columns is loaded, the domain is
// identified from the active domain, numerical columns are discretized into
// 32 equal-width bins, AIM generates synthetic data, and the result is
// written back to disk. (The demo writes its own input file first so it is
// self-contained; point `input_path` at your data to use it for real.)

#include <fstream>
#include <iostream>

#include "data/csv.h"
#include "data/preprocess.h"
#include "data/simulators.h"
#include "dp/accountant.h"
#include "eval/error.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "util/rng.h"

int main() {
  using namespace aim;
  const std::string input_path = "csv_pipeline_input.csv";
  const std::string output_path = "csv_pipeline_synth.csv";

  // --- Write a demo input file: mixed categorical + numerical columns.
  {
    Rng rng(31);
    std::ofstream file(input_path);
    file << "department,tenure_years,salary,remote\n";
    const char* departments[] = {"eng", "sales", "hr", "ops"};
    for (int i = 0; i < 3000; ++i) {
      int dept = static_cast<int>(rng.UniformInt(4));
      double tenure = std::max(0.0, rng.Gaussian(4.0 + 2.0 * dept, 2.0));
      double salary = 40000 + 15000 * dept + 4000 * tenure +
                      5000 * rng.Gaussian();
      bool remote = rng.Uniform() < (dept == 0 ? 0.7 : 0.3);
      file << departments[dept] << ',' << tenure << ',' << salary << ','
           << (remote ? "yes" : "no") << '\n';
    }
  }

  // --- Load and preprocess (Appendix A).
  StatusOr<RawTable> table = ReadCsv(input_path);
  if (!table.ok()) {
    std::cerr << table.status().ToString() << "\n";
    return 1;
  }
  StatusOr<PreprocessResult> prep = Preprocess(*table);
  if (!prep.ok()) {
    std::cerr << prep.status().ToString() << "\n";
    return 1;
  }
  const Dataset& data = prep->dataset;
  std::cout << "loaded " << data.num_records() << " records; domain:";
  for (int a = 0; a < data.domain().num_attributes(); ++a) {
    std::cout << " " << data.domain().name(a) << "("
              << data.domain().size(a)
              << (prep->specs[a].numeric ? " bins)" : " values)");
  }
  std::cout << "\n";

  // --- Synthesize with AIM at eps=2.
  Workload workload = AllKWayWorkload(data.domain(), 2);
  AimOptions options;
  options.round_estimation.max_iters = 50;
  options.final_estimation.max_iters = 300;
  options.record_candidates = false;
  AimMechanism aim(options);
  Rng rng(32);
  MechanismResult result =
      aim.Run(data, workload, CdpRho(2.0, 1e-9), rng);
  std::cout << "workload error (all 2-way marginals): "
            << WorkloadError(data, result.synthetic, workload) << "\n";

  // --- Write the synthetic (integer-coded) records.
  Status status = WriteCsv(result.synthetic, output_path);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << output_path
            << " (values are category/bin codes; see the preprocessing "
               "specs for the mapping)\n";
  return 0;
}
