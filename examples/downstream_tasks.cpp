// Downstream-utility demo: beyond the workload error the mechanism
// optimizes, how useful is AIM's synthetic data for (a) training a
// classifier and (b) answering range queries it was never tuned for?
//
// (a) ML efficacy: a naive-Bayes model trained on synthetic data is
//     evaluated on held-out REAL records and compared with a model trained
//     on the real training split (the privacy-free ceiling).
// (b) Range queries: random 2-D range queries (Section 7's "more general
//     workloads") answered from the synthetic data.

#include <iostream>

#include "data/simulators.h"
#include "dp/accountant.h"
#include "eval/experiment.h"
#include "eval/ml_efficacy.h"
#include "marginal/linear_query.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "util/rng.h"

int main() {
  using namespace aim;

  SimulatorOptions sim_options;
  sim_options.record_scale = 0.1;
  SimulatedData sim = MakePaperDataset(PaperDataset::kAdult, sim_options);
  auto [train, test] = TrainTestSplit(sim.data);
  const int label = sim.target_attribute;  // "income"
  std::cout << "adult (simulated): train " << train.num_records()
            << ", test " << test.num_records() << ", predicting '"
            << sim.data.domain().name(label) << "'\n";

  const double real_accuracy = MlEfficacy(train, test, label);
  auto range_queries =
      RandomRangeQueryWorkload(sim.data.domain(), 100, 2022);

  Workload workload = TargetWorkload(train.domain(), 3, label);
  TablePrinter table({"epsilon", "synthetic_accuracy", "real_accuracy",
                      "range_query_error"});
  for (double eps : {0.5, 2.0, 8.0}) {
    AimOptions options;
    options.max_size_mb = 4.0;
    options.round_estimation.max_iters = 40;
    options.final_estimation.max_iters = 200;
    options.record_candidates = false;
    AimMechanism aim(options);
    Rng rng(99);
    MechanismResult result =
        aim.Run(train, workload, CdpRho(eps, 1e-9), rng);
    double synth_accuracy = MlEfficacy(result.synthetic, test, label);
    double range_error =
        LinearQueryError(train, result.synthetic, range_queries);
    table.AddRow({FormatG(eps), FormatG(synth_accuracy, 3),
                  FormatG(real_accuracy, 3), FormatG(range_error, 3)});
    std::cerr << "eps=" << eps << " done\n";
  }
  table.Print(std::cout);
  std::cout << "\nThe synthetic-trained accuracy should approach the "
               "real-trained ceiling as epsilon grows, and range queries "
               "inherit accuracy from the marginals AIM preserved.\n";
  return 0;
}
