// Public-data extension demo (Section 7, "Utilizing Public Data"): when a
// related public dataset exists — an earlier release, a neighboring
// region — its low-order marginals can seed AIM's model as weak priors at
// zero privacy cost. At small epsilon this markedly reduces error; at large
// epsilon the private measurements dominate and the prior washes out.

#include <iostream>

#include "data/simulators.h"
#include "dp/accountant.h"
#include "eval/error.h"
#include "eval/experiment.h"
#include "marginal/workload.h"
#include "mechanisms/aim.h"
#include "util/rng.h"

int main() {
  using namespace aim;

  // Simulate a population, then split disjointly: 30% becomes the public
  // release, 70% is the sensitive dataset. Same distribution, distinct
  // records.
  SimulatorOptions sim_options;
  sim_options.record_scale = 0.1;
  SimulatedData sim = MakePaperDataset(PaperDataset::kNltcs, sim_options);
  const int64_t split = sim.data.num_records() * 3 / 10;
  std::vector<int64_t> public_rows, private_rows;
  for (int64_t row = 0; row < sim.data.num_records(); ++row) {
    (row < split ? public_rows : private_rows).push_back(row);
  }
  Dataset public_data = sim.data.Subsample(public_rows);
  Dataset private_data = sim.data.Subsample(private_rows);
  std::cout << "public: " << public_data.num_records()
            << " records; private: " << private_data.num_records()
            << " records\n\n";

  Workload workload = AllKWayWorkload(private_data.domain(), 3);

  TablePrinter table({"epsilon", "AIM", "AIM+public", "improvement"});
  for (double eps : {0.05, 0.2}) {
    AimOptions plain;
    plain.round_estimation.max_iters = 30;
    plain.final_estimation.max_iters = 150;
    plain.record_candidates = false;
    AimOptions boosted = plain;
    boosted.public_data = &public_data;

    const double rho = CdpRho(eps, 1e-9);
    Rng rng_a(3), rng_b(3);
    double base = WorkloadError(
        private_data,
        AimMechanism(plain).Run(private_data, workload, rho, rng_a)
            .synthetic,
        workload);
    double with_public = WorkloadError(
        private_data,
        AimMechanism(boosted).Run(private_data, workload, rho, rng_b)
            .synthetic,
        workload);
    table.AddRow({FormatG(eps), FormatG(base), FormatG(with_public),
                  FormatG(base / with_public, 3)});
  }
  table.Print(std::cout);
  std::cout << "\n(>1 improvement means the public prior helped; the boost "
               "should shrink as epsilon grows)\n";
  return 0;
}
