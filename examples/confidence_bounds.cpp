// Uncertainty quantification demo (Section 5): run AIM, then compute
// per-query one-sided 95% confidence bounds on the L1 error of the
// generated synthetic data — with no extra privacy cost — and compare
// against the (normally unknowable) true errors.

#include <iostream>

#include "data/simulators.h"
#include "dp/accountant.h"
#include "eval/experiment.h"
#include "marginal/marginal.h"
#include "mechanisms/aim.h"
#include "uncertainty/bounds.h"
#include "util/math.h"

int main() {
  using namespace aim;

  SimulatorOptions sim_options;
  sim_options.record_scale = 0.05;
  SimulatedData sim = MakePaperDataset(PaperDataset::kTitanic, sim_options);
  const Dataset& data = sim.data;
  Workload workload = AllKWayWorkload(data.domain(), 3);

  AimOptions options;
  options.max_size_mb = 4.0;
  options.round_estimation.max_iters = 50;
  options.final_estimation.max_iters = 300;
  // Candidate sets must be recorded for the unsupported-marginal bounds.
  options.record_candidates = true;
  AimMechanism aim(options);
  Rng rng(7);
  MechanismResult result =
      aim.Run(data, workload, CdpRho(10.0, 1e-9), rng);
  std::cout << "AIM finished: " << result.rounds << " rounds\n\n";

  // lambda = 1.7 / (2.7, 3.7) give ~95% one-sided coverage (Section 6.6).
  UncertaintyQuantifier uq(data.domain(), result);

  TablePrinter table({"marginal", "supported", "bound(L1)", "true(L1)",
                      "bound_holds"});
  int covered = 0, total = 0;
  for (const AttrSet& r : DownwardClosure(workload)) {
    if (r.size() != 2) continue;  // show the 2-way marginals
    auto bound = uq.BoundFor(r, result.synthetic);
    if (!bound.has_value()) continue;
    double true_error = L1Distance(ComputeMarginal(data, r),
                                   ComputeMarginal(result.synthetic, r));
    ++total;
    if (true_error <= bound->bound) ++covered;
    table.AddRow({r.ToString(), bound->supported ? "yes" : "no",
                  FormatG(bound->bound), FormatG(true_error),
                  true_error <= bound->bound ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\ncoverage: " << covered << "/" << total
            << " two-way marginals within their 95% bound\n"
            << "An analyst sees only the 'bound' column — it certifies the "
               "quality of each query answer without touching the real "
               "data again.\n";
  return 0;
}
