// Structural zeros demo (Appendix D): attribute combinations that cannot
// occur in reality (here: FIRE's correlated location attributes) are
// enforced in the model, so the synthetic data never contains impossible
// records — and accuracy on the workload typically improves.

#include <iostream>

#include "data/simulators.h"
#include "dp/accountant.h"
#include "eval/error.h"
#include "marginal/marginal.h"
#include "mechanisms/aim.h"
#include "pgm/estimation.h"
#include "util/rng.h"

int main() {
  using namespace aim;

  SimulatorOptions sim_options;
  sim_options.record_scale = 0.02;
  SimulatedData sim = MakePaperDataset(PaperDataset::kFire, sim_options);
  const Dataset& data = sim.data;
  Workload workload = AllKWayWorkload(data.domain(), 3);

  // The FIRE simulator embeds nine attribute pairs with known-impossible
  // combinations (like zipcode/city pairs that do not co-occur).
  std::vector<ZeroConstraint> zeros;
  int64_t zero_tuples = 0;
  for (const StructuralZeroConstraint& c : sim.structural_zeros) {
    ZeroConstraint z;
    z.attrs = AttrSet(c.attributes);
    MarginalIndexer indexer(data.domain(), z.attrs);
    for (const auto& tuple : c.zero_tuples) {
      z.zero_cells.push_back(indexer.IndexOfTuple(tuple));
    }
    zero_tuples += static_cast<int64_t>(z.zero_cells.size());
    zeros.push_back(std::move(z));
  }
  std::cout << "fire: " << zeros.size() << " constrained attribute pairs, "
            << zero_tuples << " impossible combinations\n";

  const double rho = CdpRho(1.0, 1e-9);
  AimOptions plain;
  plain.max_size_mb = 4.0;
  plain.round_estimation.max_iters = 50;
  plain.final_estimation.max_iters = 300;
  plain.record_candidates = false;
  AimOptions constrained = plain;
  constrained.structural_zeros = zeros;

  Rng rng_a(1), rng_b(1);
  MechanismResult base = AimMechanism(plain).Run(data, workload, rho, rng_a);
  MechanismResult with_zeros =
      AimMechanism(constrained).Run(data, workload, rho, rng_b);

  // Count impossible records produced by each run.
  auto violations = [&](const Dataset& synth) {
    int64_t count = 0;
    for (const StructuralZeroConstraint& c : sim.structural_zeros) {
      AttrSet attrs(c.attributes);
      MarginalIndexer indexer(data.domain(), attrs);
      std::vector<double> marginal = ComputeMarginal(synth, attrs);
      for (const auto& tuple : c.zero_tuples) {
        count += static_cast<int64_t>(marginal[indexer.IndexOfTuple(tuple)]);
      }
    }
    return count;
  };

  std::cout << "without constraints: error="
            << WorkloadError(data, base.synthetic, workload)
            << ", impossible records=" << violations(base.synthetic) << "\n";
  std::cout << "with constraints:    error="
            << WorkloadError(data, with_zeros.synthetic, workload)
            << ", impossible records=" << violations(with_zeros.synthetic)
            << "\n";
  return 0;
}
