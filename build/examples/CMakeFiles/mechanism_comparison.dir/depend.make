# Empty dependencies file for mechanism_comparison.
# This may be replaced when dependencies are built.
