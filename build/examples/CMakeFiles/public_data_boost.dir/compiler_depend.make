# Empty compiler generated dependencies file for public_data_boost.
# This may be replaced when dependencies are built.
