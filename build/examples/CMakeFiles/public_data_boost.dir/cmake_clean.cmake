file(REMOVE_RECURSE
  "CMakeFiles/public_data_boost.dir/public_data_boost.cpp.o"
  "CMakeFiles/public_data_boost.dir/public_data_boost.cpp.o.d"
  "public_data_boost"
  "public_data_boost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/public_data_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
