file(REMOVE_RECURSE
  "CMakeFiles/confidence_bounds.dir/confidence_bounds.cpp.o"
  "CMakeFiles/confidence_bounds.dir/confidence_bounds.cpp.o.d"
  "confidence_bounds"
  "confidence_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confidence_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
