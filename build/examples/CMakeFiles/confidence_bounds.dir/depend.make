# Empty dependencies file for confidence_bounds.
# This may be replaced when dependencies are built.
