# Empty compiler generated dependencies file for downstream_tasks.
# This may be replaced when dependencies are built.
