file(REMOVE_RECURSE
  "CMakeFiles/downstream_tasks.dir/downstream_tasks.cpp.o"
  "CMakeFiles/downstream_tasks.dir/downstream_tasks.cpp.o.d"
  "downstream_tasks"
  "downstream_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downstream_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
