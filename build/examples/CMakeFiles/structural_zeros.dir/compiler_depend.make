# Empty compiler generated dependencies file for structural_zeros.
# This may be replaced when dependencies are built.
