file(REMOVE_RECURSE
  "CMakeFiles/structural_zeros.dir/structural_zeros.cpp.o"
  "CMakeFiles/structural_zeros.dir/structural_zeros.cpp.o.d"
  "structural_zeros"
  "structural_zeros.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structural_zeros.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
