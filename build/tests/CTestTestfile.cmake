# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/marginal_test[1]_include.cmake")
include("/root/repo/build/tests/factor_test[1]_include.cmake")
include("/root/repo/build/tests/dp_test[1]_include.cmake")
include("/root/repo/build/tests/pgm_test[1]_include.cmake")
include("/root/repo/build/tests/mechanisms_test[1]_include.cmake")
include("/root/repo/build/tests/uncertainty_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/extras_test[1]_include.cmake")
include("/root/repo/build/tests/paper_properties_test[1]_include.cmake")
include("/root/repo/build/tests/downstream_test[1]_include.cmake")
include("/root/repo/build/tests/randomized_model_test[1]_include.cmake")
