file(REMOVE_RECURSE
  "CMakeFiles/marginal_test.dir/marginal_test.cc.o"
  "CMakeFiles/marginal_test.dir/marginal_test.cc.o.d"
  "marginal_test"
  "marginal_test.pdb"
  "marginal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marginal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
