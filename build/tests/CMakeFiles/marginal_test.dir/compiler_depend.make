# Empty compiler generated dependencies file for marginal_test.
# This may be replaced when dependencies are built.
