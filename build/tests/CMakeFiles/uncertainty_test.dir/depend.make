# Empty dependencies file for uncertainty_test.
# This may be replaced when dependencies are built.
