file(REMOVE_RECURSE
  "CMakeFiles/uncertainty_test.dir/uncertainty_test.cc.o"
  "CMakeFiles/uncertainty_test.dir/uncertainty_test.cc.o.d"
  "uncertainty_test"
  "uncertainty_test.pdb"
  "uncertainty_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncertainty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
