file(REMOVE_RECURSE
  "CMakeFiles/randomized_model_test.dir/randomized_model_test.cc.o"
  "CMakeFiles/randomized_model_test.dir/randomized_model_test.cc.o.d"
  "randomized_model_test"
  "randomized_model_test.pdb"
  "randomized_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomized_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
