file(REMOVE_RECURSE
  "CMakeFiles/aim_util.dir/math.cc.o"
  "CMakeFiles/aim_util.dir/math.cc.o.d"
  "CMakeFiles/aim_util.dir/rng.cc.o"
  "CMakeFiles/aim_util.dir/rng.cc.o.d"
  "CMakeFiles/aim_util.dir/status.cc.o"
  "CMakeFiles/aim_util.dir/status.cc.o.d"
  "CMakeFiles/aim_util.dir/strings.cc.o"
  "CMakeFiles/aim_util.dir/strings.cc.o.d"
  "libaim_util.a"
  "libaim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
