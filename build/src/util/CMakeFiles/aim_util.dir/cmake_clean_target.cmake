file(REMOVE_RECURSE
  "libaim_util.a"
)
