# Empty dependencies file for aim_util.
# This may be replaced when dependencies are built.
