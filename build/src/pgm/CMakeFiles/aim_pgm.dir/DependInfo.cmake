
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pgm/estimation.cc" "src/pgm/CMakeFiles/aim_pgm.dir/estimation.cc.o" "gcc" "src/pgm/CMakeFiles/aim_pgm.dir/estimation.cc.o.d"
  "/root/repo/src/pgm/junction_tree.cc" "src/pgm/CMakeFiles/aim_pgm.dir/junction_tree.cc.o" "gcc" "src/pgm/CMakeFiles/aim_pgm.dir/junction_tree.cc.o.d"
  "/root/repo/src/pgm/markov_random_field.cc" "src/pgm/CMakeFiles/aim_pgm.dir/markov_random_field.cc.o" "gcc" "src/pgm/CMakeFiles/aim_pgm.dir/markov_random_field.cc.o.d"
  "/root/repo/src/pgm/synthetic.cc" "src/pgm/CMakeFiles/aim_pgm.dir/synthetic.cc.o" "gcc" "src/pgm/CMakeFiles/aim_pgm.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/factor/CMakeFiles/aim_factor.dir/DependInfo.cmake"
  "/root/repo/build/src/marginal/CMakeFiles/aim_marginal.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
