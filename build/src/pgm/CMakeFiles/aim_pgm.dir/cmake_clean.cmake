file(REMOVE_RECURSE
  "CMakeFiles/aim_pgm.dir/estimation.cc.o"
  "CMakeFiles/aim_pgm.dir/estimation.cc.o.d"
  "CMakeFiles/aim_pgm.dir/junction_tree.cc.o"
  "CMakeFiles/aim_pgm.dir/junction_tree.cc.o.d"
  "CMakeFiles/aim_pgm.dir/markov_random_field.cc.o"
  "CMakeFiles/aim_pgm.dir/markov_random_field.cc.o.d"
  "CMakeFiles/aim_pgm.dir/synthetic.cc.o"
  "CMakeFiles/aim_pgm.dir/synthetic.cc.o.d"
  "libaim_pgm.a"
  "libaim_pgm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aim_pgm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
