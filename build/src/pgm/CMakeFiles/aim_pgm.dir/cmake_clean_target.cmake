file(REMOVE_RECURSE
  "libaim_pgm.a"
)
