# Empty compiler generated dependencies file for aim_pgm.
# This may be replaced when dependencies are built.
