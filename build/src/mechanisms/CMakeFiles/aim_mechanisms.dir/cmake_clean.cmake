file(REMOVE_RECURSE
  "CMakeFiles/aim_mechanisms.dir/aim.cc.o"
  "CMakeFiles/aim_mechanisms.dir/aim.cc.o.d"
  "CMakeFiles/aim_mechanisms.dir/gaussian_baseline.cc.o"
  "CMakeFiles/aim_mechanisms.dir/gaussian_baseline.cc.o.d"
  "CMakeFiles/aim_mechanisms.dir/gem.cc.o"
  "CMakeFiles/aim_mechanisms.dir/gem.cc.o.d"
  "CMakeFiles/aim_mechanisms.dir/independent.cc.o"
  "CMakeFiles/aim_mechanisms.dir/independent.cc.o.d"
  "CMakeFiles/aim_mechanisms.dir/mst.cc.o"
  "CMakeFiles/aim_mechanisms.dir/mst.cc.o.d"
  "CMakeFiles/aim_mechanisms.dir/mwem_pgm.cc.o"
  "CMakeFiles/aim_mechanisms.dir/mwem_pgm.cc.o.d"
  "CMakeFiles/aim_mechanisms.dir/mwem_rp.cc.o"
  "CMakeFiles/aim_mechanisms.dir/mwem_rp.cc.o.d"
  "CMakeFiles/aim_mechanisms.dir/privbayes_pgm.cc.o"
  "CMakeFiles/aim_mechanisms.dir/privbayes_pgm.cc.o.d"
  "CMakeFiles/aim_mechanisms.dir/privmrf.cc.o"
  "CMakeFiles/aim_mechanisms.dir/privmrf.cc.o.d"
  "CMakeFiles/aim_mechanisms.dir/rap.cc.o"
  "CMakeFiles/aim_mechanisms.dir/rap.cc.o.d"
  "CMakeFiles/aim_mechanisms.dir/registry.cc.o"
  "CMakeFiles/aim_mechanisms.dir/registry.cc.o.d"
  "CMakeFiles/aim_mechanisms.dir/relaxed_projection.cc.o"
  "CMakeFiles/aim_mechanisms.dir/relaxed_projection.cc.o.d"
  "libaim_mechanisms.a"
  "libaim_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aim_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
