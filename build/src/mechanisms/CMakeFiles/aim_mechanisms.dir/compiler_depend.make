# Empty compiler generated dependencies file for aim_mechanisms.
# This may be replaced when dependencies are built.
