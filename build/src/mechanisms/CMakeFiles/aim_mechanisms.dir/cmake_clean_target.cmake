file(REMOVE_RECURSE
  "libaim_mechanisms.a"
)
