
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mechanisms/aim.cc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/aim.cc.o" "gcc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/aim.cc.o.d"
  "/root/repo/src/mechanisms/gaussian_baseline.cc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/gaussian_baseline.cc.o" "gcc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/gaussian_baseline.cc.o.d"
  "/root/repo/src/mechanisms/gem.cc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/gem.cc.o" "gcc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/gem.cc.o.d"
  "/root/repo/src/mechanisms/independent.cc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/independent.cc.o" "gcc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/independent.cc.o.d"
  "/root/repo/src/mechanisms/mst.cc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/mst.cc.o" "gcc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/mst.cc.o.d"
  "/root/repo/src/mechanisms/mwem_pgm.cc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/mwem_pgm.cc.o" "gcc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/mwem_pgm.cc.o.d"
  "/root/repo/src/mechanisms/mwem_rp.cc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/mwem_rp.cc.o" "gcc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/mwem_rp.cc.o.d"
  "/root/repo/src/mechanisms/privbayes_pgm.cc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/privbayes_pgm.cc.o" "gcc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/privbayes_pgm.cc.o.d"
  "/root/repo/src/mechanisms/privmrf.cc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/privmrf.cc.o" "gcc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/privmrf.cc.o.d"
  "/root/repo/src/mechanisms/rap.cc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/rap.cc.o" "gcc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/rap.cc.o.d"
  "/root/repo/src/mechanisms/registry.cc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/registry.cc.o" "gcc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/registry.cc.o.d"
  "/root/repo/src/mechanisms/relaxed_projection.cc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/relaxed_projection.cc.o" "gcc" "src/mechanisms/CMakeFiles/aim_mechanisms.dir/relaxed_projection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pgm/CMakeFiles/aim_pgm.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/aim_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/factor/CMakeFiles/aim_factor.dir/DependInfo.cmake"
  "/root/repo/build/src/marginal/CMakeFiles/aim_marginal.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
