file(REMOVE_RECURSE
  "CMakeFiles/aim_uncertainty.dir/bounds.cc.o"
  "CMakeFiles/aim_uncertainty.dir/bounds.cc.o.d"
  "CMakeFiles/aim_uncertainty.dir/estimators.cc.o"
  "CMakeFiles/aim_uncertainty.dir/estimators.cc.o.d"
  "CMakeFiles/aim_uncertainty.dir/subsampling.cc.o"
  "CMakeFiles/aim_uncertainty.dir/subsampling.cc.o.d"
  "libaim_uncertainty.a"
  "libaim_uncertainty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aim_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
