file(REMOVE_RECURSE
  "libaim_uncertainty.a"
)
