# Empty compiler generated dependencies file for aim_uncertainty.
# This may be replaced when dependencies are built.
