file(REMOVE_RECURSE
  "libaim_eval.a"
)
