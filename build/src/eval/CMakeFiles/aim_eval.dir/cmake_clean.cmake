file(REMOVE_RECURSE
  "CMakeFiles/aim_eval.dir/error.cc.o"
  "CMakeFiles/aim_eval.dir/error.cc.o.d"
  "CMakeFiles/aim_eval.dir/experiment.cc.o"
  "CMakeFiles/aim_eval.dir/experiment.cc.o.d"
  "CMakeFiles/aim_eval.dir/ml_efficacy.cc.o"
  "CMakeFiles/aim_eval.dir/ml_efficacy.cc.o.d"
  "libaim_eval.a"
  "libaim_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aim_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
