# Empty compiler generated dependencies file for aim_eval.
# This may be replaced when dependencies are built.
