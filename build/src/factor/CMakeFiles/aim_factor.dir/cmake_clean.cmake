file(REMOVE_RECURSE
  "CMakeFiles/aim_factor.dir/factor.cc.o"
  "CMakeFiles/aim_factor.dir/factor.cc.o.d"
  "libaim_factor.a"
  "libaim_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aim_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
