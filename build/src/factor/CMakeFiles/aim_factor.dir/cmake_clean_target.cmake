file(REMOVE_RECURSE
  "libaim_factor.a"
)
