# Empty compiler generated dependencies file for aim_factor.
# This may be replaced when dependencies are built.
