file(REMOVE_RECURSE
  "libaim_marginal.a"
)
