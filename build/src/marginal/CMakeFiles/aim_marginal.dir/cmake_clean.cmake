file(REMOVE_RECURSE
  "CMakeFiles/aim_marginal.dir/attr_set.cc.o"
  "CMakeFiles/aim_marginal.dir/attr_set.cc.o.d"
  "CMakeFiles/aim_marginal.dir/linear_query.cc.o"
  "CMakeFiles/aim_marginal.dir/linear_query.cc.o.d"
  "CMakeFiles/aim_marginal.dir/marginal.cc.o"
  "CMakeFiles/aim_marginal.dir/marginal.cc.o.d"
  "CMakeFiles/aim_marginal.dir/workload.cc.o"
  "CMakeFiles/aim_marginal.dir/workload.cc.o.d"
  "libaim_marginal.a"
  "libaim_marginal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aim_marginal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
