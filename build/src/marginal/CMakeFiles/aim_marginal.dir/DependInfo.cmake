
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/marginal/attr_set.cc" "src/marginal/CMakeFiles/aim_marginal.dir/attr_set.cc.o" "gcc" "src/marginal/CMakeFiles/aim_marginal.dir/attr_set.cc.o.d"
  "/root/repo/src/marginal/linear_query.cc" "src/marginal/CMakeFiles/aim_marginal.dir/linear_query.cc.o" "gcc" "src/marginal/CMakeFiles/aim_marginal.dir/linear_query.cc.o.d"
  "/root/repo/src/marginal/marginal.cc" "src/marginal/CMakeFiles/aim_marginal.dir/marginal.cc.o" "gcc" "src/marginal/CMakeFiles/aim_marginal.dir/marginal.cc.o.d"
  "/root/repo/src/marginal/workload.cc" "src/marginal/CMakeFiles/aim_marginal.dir/workload.cc.o" "gcc" "src/marginal/CMakeFiles/aim_marginal.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/aim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
