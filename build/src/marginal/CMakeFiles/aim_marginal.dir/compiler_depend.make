# Empty compiler generated dependencies file for aim_marginal.
# This may be replaced when dependencies are built.
