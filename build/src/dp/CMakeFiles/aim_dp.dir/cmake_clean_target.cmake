file(REMOVE_RECURSE
  "libaim_dp.a"
)
