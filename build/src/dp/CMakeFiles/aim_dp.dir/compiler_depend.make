# Empty compiler generated dependencies file for aim_dp.
# This may be replaced when dependencies are built.
