file(REMOVE_RECURSE
  "CMakeFiles/aim_dp.dir/accountant.cc.o"
  "CMakeFiles/aim_dp.dir/accountant.cc.o.d"
  "CMakeFiles/aim_dp.dir/mechanisms.cc.o"
  "CMakeFiles/aim_dp.dir/mechanisms.cc.o.d"
  "libaim_dp.a"
  "libaim_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aim_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
