file(REMOVE_RECURSE
  "CMakeFiles/aim_data.dir/csv.cc.o"
  "CMakeFiles/aim_data.dir/csv.cc.o.d"
  "CMakeFiles/aim_data.dir/dataset.cc.o"
  "CMakeFiles/aim_data.dir/dataset.cc.o.d"
  "CMakeFiles/aim_data.dir/domain.cc.o"
  "CMakeFiles/aim_data.dir/domain.cc.o.d"
  "CMakeFiles/aim_data.dir/preprocess.cc.o"
  "CMakeFiles/aim_data.dir/preprocess.cc.o.d"
  "CMakeFiles/aim_data.dir/simulators.cc.o"
  "CMakeFiles/aim_data.dir/simulators.cc.o.d"
  "libaim_data.a"
  "libaim_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aim_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
