file(REMOVE_RECURSE
  "libaim_data.a"
)
