# Empty dependencies file for aim_data.
# This may be replaced when dependencies are built.
