
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/aim_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/aim_data.dir/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/aim_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/aim_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/domain.cc" "src/data/CMakeFiles/aim_data.dir/domain.cc.o" "gcc" "src/data/CMakeFiles/aim_data.dir/domain.cc.o.d"
  "/root/repo/src/data/preprocess.cc" "src/data/CMakeFiles/aim_data.dir/preprocess.cc.o" "gcc" "src/data/CMakeFiles/aim_data.dir/preprocess.cc.o.d"
  "/root/repo/src/data/simulators.cc" "src/data/CMakeFiles/aim_data.dir/simulators.cc.o" "gcc" "src/data/CMakeFiles/aim_data.dir/simulators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
