file(REMOVE_RECURSE
  "CMakeFiles/aim_cli.dir/aim_cli.cc.o"
  "CMakeFiles/aim_cli.dir/aim_cli.cc.o.d"
  "aim_cli"
  "aim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
