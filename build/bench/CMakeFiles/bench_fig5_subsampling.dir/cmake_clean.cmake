file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_subsampling.dir/bench_fig5_subsampling.cc.o"
  "CMakeFiles/bench_fig5_subsampling.dir/bench_fig5_subsampling.cc.o.d"
  "bench_fig5_subsampling"
  "bench_fig5_subsampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_subsampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
