# Empty dependencies file for bench_fig5_subsampling.
# This may be replaced when dependencies are built.
