# Empty compiler generated dependencies file for bench_fig1_all3way.
# This may be replaced when dependencies are built.
