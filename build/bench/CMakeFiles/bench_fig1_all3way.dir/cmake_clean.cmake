file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_all3way.dir/bench_fig1_all3way.cc.o"
  "CMakeFiles/bench_fig1_all3way.dir/bench_fig1_all3way.cc.o.d"
  "bench_fig1_all3way"
  "bench_fig1_all3way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_all3way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
