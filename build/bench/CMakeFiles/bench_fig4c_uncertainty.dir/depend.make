# Empty dependencies file for bench_fig4c_uncertainty.
# This may be replaced when dependencies are built.
