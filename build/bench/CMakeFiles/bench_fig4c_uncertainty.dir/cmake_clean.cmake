file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4c_uncertainty.dir/bench_fig4c_uncertainty.cc.o"
  "CMakeFiles/bench_fig4c_uncertainty.dir/bench_fig4c_uncertainty.cc.o.d"
  "bench_fig4c_uncertainty"
  "bench_fig4c_uncertainty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4c_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
