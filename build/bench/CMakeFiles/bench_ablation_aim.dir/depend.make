# Empty dependencies file for bench_ablation_aim.
# This may be replaced when dependencies are built.
