file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aim.dir/bench_ablation_aim.cc.o"
  "CMakeFiles/bench_ablation_aim.dir/bench_ablation_aim.cc.o.d"
  "bench_ablation_aim"
  "bench_ablation_aim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
