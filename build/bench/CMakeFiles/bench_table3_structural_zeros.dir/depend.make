# Empty dependencies file for bench_table3_structural_zeros.
# This may be replaced when dependencies are built.
