file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_structural_zeros.dir/bench_table3_structural_zeros.cc.o"
  "CMakeFiles/bench_table3_structural_zeros.dir/bench_table3_structural_zeros.cc.o.d"
  "bench_table3_structural_zeros"
  "bench_table3_structural_zeros.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_structural_zeros.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
