file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_target.dir/bench_fig2_target.cc.o"
  "CMakeFiles/bench_fig2_target.dir/bench_fig2_target.cc.o.d"
  "bench_fig2_target"
  "bench_fig2_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
