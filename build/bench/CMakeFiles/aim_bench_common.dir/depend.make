# Empty dependencies file for aim_bench_common.
# This may be replaced when dependencies are built.
