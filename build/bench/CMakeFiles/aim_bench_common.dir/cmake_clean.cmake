file(REMOVE_RECURSE
  "CMakeFiles/aim_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/aim_bench_common.dir/bench_common.cc.o.d"
  "CMakeFiles/aim_bench_common.dir/fig_workload.cc.o"
  "CMakeFiles/aim_bench_common.dir/fig_workload.cc.o.d"
  "libaim_bench_common.a"
  "libaim_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aim_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
