file(REMOVE_RECURSE
  "libaim_bench_common.a"
)
