# Empty compiler generated dependencies file for bench_fig7_pgm_vs_rp.
# This may be replaced when dependencies are built.
