file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4ab_capacity.dir/bench_fig4ab_capacity.cc.o"
  "CMakeFiles/bench_fig4ab_capacity.dir/bench_fig4ab_capacity.cc.o.d"
  "bench_fig4ab_capacity"
  "bench_fig4ab_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4ab_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
