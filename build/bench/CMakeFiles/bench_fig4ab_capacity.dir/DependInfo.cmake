
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4ab_capacity.cc" "bench/CMakeFiles/bench_fig4ab_capacity.dir/bench_fig4ab_capacity.cc.o" "gcc" "bench/CMakeFiles/bench_fig4ab_capacity.dir/bench_fig4ab_capacity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/aim_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/aim_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/uncertainty/CMakeFiles/aim_uncertainty.dir/DependInfo.cmake"
  "/root/repo/build/src/mechanisms/CMakeFiles/aim_mechanisms.dir/DependInfo.cmake"
  "/root/repo/build/src/pgm/CMakeFiles/aim_pgm.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/aim_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/factor/CMakeFiles/aim_factor.dir/DependInfo.cmake"
  "/root/repo/build/src/marginal/CMakeFiles/aim_marginal.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
