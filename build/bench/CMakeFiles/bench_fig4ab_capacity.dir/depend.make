# Empty dependencies file for bench_fig4ab_capacity.
# This may be replaced when dependencies are built.
