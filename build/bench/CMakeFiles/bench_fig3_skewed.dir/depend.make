# Empty dependencies file for bench_fig3_skewed.
# This may be replaced when dependencies are built.
