file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_skewed.dir/bench_fig3_skewed.cc.o"
  "CMakeFiles/bench_fig3_skewed.dir/bench_fig3_skewed.cc.o.d"
  "bench_fig3_skewed"
  "bench_fig3_skewed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_skewed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
