#!/usr/bin/env python3
"""Chaos sweep: deterministic fault injection against the real CLI binaries.

For every fault point a binary registers (discovered via
`--list-fault-points`) and a set of injection modes (one-shot, later-shot,
seeded coin flips), run the tool with AIM_FAULTS armed and assert the
failure-containment invariant the repo documents in DESIGN.md
("Failure model & recovery"):

  * the process exits with a documented typed code (0, 1, 2, 4, 5, 6, 7, 8)
    — never a signal death, never an abort;
  * exit 0 => the output artifact exists and is bitwise-identical to the
    fault-free reference run (faults that were retried away or only cost
    checkpoints/trace lines must not perturb the result);
  * exit != 0 => NO output artifact is left behind (no partial or torn
    files; recovery artifacts like checkpoints and traces are exempt).

On top of the sweep, a corrupted-checkpoint kill/resume case: crash a
checkpointed run mid-flight, flip a byte in the NEWEST checkpoint
generation, and require the resume to fall back to an older generation and
still reproduce the reference output bitwise — at --threads=1 and
--threads=8.

Usage: scripts/chaos_sweep.py [--build-dir build] [--work-dir DIR]
Exits 0 when every case holds; prints each violation and exits 1 otherwise.
The work dir is kept on failure so CI can upload it as an artifact.
"""

import argparse
import os
import shutil
import subprocess
import sys

TYPED_EXITS = {0, 1, 2, 4, 5, 6, 7, 8}
FAULT_SPECS = ["n=1", "n=3", "p=0.5,seed=9"]

failures = []


def report(case, message):
    failures.append(f"{case}: {message}")
    print(f"FAIL {case}: {message}", flush=True)


def run(cmd, faults=None, timeout=300):
    env = dict(os.environ)
    env.pop("AIM_FAULTS", None)
    env.pop("AIM_TRACE", None)
    if faults:
        env["AIM_FAULTS"] = faults
    return subprocess.run(cmd, env=env, capture_output=True, text=True,
                          timeout=timeout)


def read_bytes(path):
    with open(path, "rb") as f:
        return f.read()


def flip_byte(path, offset_divisor=2):
    data = bytearray(read_bytes(path))
    data[len(data) // offset_divisor] ^= 0x01
    with open(path, "wb") as f:
        f.write(bytes(data))


def write_precoded_csv(path, rows=4000):
    """Deterministic integer-coded dataset (domain sizes 2,3,4,3,2)."""
    sizes = [2, 3, 4, 3, 2]
    lines = [",".join(f"a{i}" for i in range(len(sizes)))]
    state = 42
    for _ in range(rows):
        values = []
        for size in sizes:
            state = (state * 1103515245 + 12345) % 2147483648
            values.append(str(state % size))
        lines.append(",".join(values))
    with open(path, "w") as f:
        f.write("\n".join(lines) + "\n")
    return ",".join(str(s) for s in sizes)


def list_fault_points(binary):
    proc = run([binary, "--list-fault-points"])
    if proc.returncode != 0:
        report(f"{os.path.basename(binary)} --list-fault-points",
               f"exit {proc.returncode}: {proc.stderr.strip()}")
        return []
    return [line for line in proc.stdout.splitlines() if line]


def check_exit(case, proc):
    """Typed exit code, never a signal death. Returns False on violation."""
    if proc.returncode < 0:
        report(case, f"killed by signal {-proc.returncode} "
                     f"(stderr: {proc.stderr.strip()[-300:]})")
        return False
    if proc.returncode not in TYPED_EXITS:
        report(case, f"undocumented exit code {proc.returncode} "
                     f"(stderr: {proc.stderr.strip()[-300:]})")
        return False
    return True


def sweep_aim_cli(cli, store_path, work):
    """Fault sweep over aim_cli running synthesis from a sharded store."""
    base_flags = [
        f"--input={store_path}", "--epsilon=0.5", "--workload=all2way",
        "--seed=7", "--threads=2",
    ]

    ref_dir = os.path.join(work, "aim_ref")
    os.makedirs(ref_dir, exist_ok=True)
    ref_out = os.path.join(ref_dir, "synth.csv")
    proc = run([cli] + base_flags + [
        f"--output={ref_out}",
        f"--checkpoint-out={os.path.join(ref_dir, 'ckpt.snap')}",
        "--checkpoint-generations=2",
        f"--trace-out={os.path.join(ref_dir, 'trace.jsonl')}",
    ])
    if proc.returncode != 0:
        report("aim_cli reference", f"exit {proc.returncode}: {proc.stderr}")
        return None
    reference = read_bytes(ref_out)

    for point in list_fault_points(cli):
        for spec in FAULT_SPECS:
            case = f"aim_cli {point}:{spec}"
            case_dir = os.path.join(work, f"aim_{point}_{spec.split('=')[0]}"
                                          f"_{spec.replace('=', '').replace(',', '_').replace('.', '')}")
            shutil.rmtree(case_dir, ignore_errors=True)
            os.makedirs(case_dir)
            out = os.path.join(case_dir, "synth.csv")
            proc = run([cli] + base_flags + [
                f"--output={out}",
                f"--checkpoint-out={os.path.join(case_dir, 'ckpt.snap')}",
                "--checkpoint-generations=2",
                f"--trace-out={os.path.join(case_dir, 'trace.jsonl')}",
            ], faults=f"{point}:{spec}")
            if not check_exit(case, proc):
                continue
            if proc.returncode == 0:
                if not os.path.exists(out):
                    report(case, "exit 0 but no output file")
                elif read_bytes(out) != reference:
                    report(case, "exit 0 but output differs from the "
                                 "fault-free reference")
            else:
                if os.path.exists(out):
                    report(case, f"exit {proc.returncode} left an output "
                                 "artifact behind")
            print(f"ok   {case} (exit {proc.returncode})", flush=True)
    return reference


def store_files(store_path):
    """The manifest/single file plus any shards next to it."""
    directory = os.path.dirname(store_path)
    stem = os.path.basename(store_path)
    if stem.endswith(".aim"):
        stem = stem[: -len(".aim")]
    found = []
    for name in sorted(os.listdir(directory)):
        if name == os.path.basename(store_path) or (
                name.startswith(stem + ".") and name.endswith(".aim")):
            found.append(os.path.join(directory, name))
    return found


def sweep_csv2aim(csv2aim, precoded_csv, domain_sizes, work):
    """Fault sweep over csv2aim (sharded conversion + cleanup contract)."""
    ref_dir = os.path.join(work, "csv2aim_ref")
    os.makedirs(ref_dir, exist_ok=True)
    ref_store = os.path.join(ref_dir, "data.aim")
    flags = [f"--input={precoded_csv}", f"--domain-sizes={domain_sizes}",
             "--shard-rows=1500"]
    proc = run([csv2aim] + flags + [f"--output={ref_store}"])
    if proc.returncode != 0:
        report("csv2aim reference", f"exit {proc.returncode}: {proc.stderr}")
        return None
    reference = {os.path.basename(p): read_bytes(p)
                 for p in store_files(ref_store)}

    for point in list_fault_points(csv2aim):
        for spec in FAULT_SPECS:
            case = f"csv2aim {point}:{spec}"
            case_dir = os.path.join(
                work, f"c2a_{point}_{spec.replace('=', '').replace(',', '_').replace('.', '')}")
            shutil.rmtree(case_dir, ignore_errors=True)
            os.makedirs(case_dir)
            out = os.path.join(case_dir, "data.aim")
            proc = run([csv2aim] + flags + [f"--output={out}"],
                       faults=f"{point}:{spec}")
            if not check_exit(case, proc):
                continue
            produced = store_files(out)
            if proc.returncode == 0:
                got = {os.path.basename(p): read_bytes(p) for p in produced}
                if got != reference:
                    report(case, "exit 0 but the store differs from the "
                                 "fault-free conversion")
            else:
                # The cleanup contract: a failed conversion leaves the
                # output location EMPTY — no shards, no manifest.
                if produced:
                    report(case, f"exit {proc.returncode} left partial "
                                 f"store files behind: "
                                 f"{[os.path.basename(p) for p in produced]}")
            print(f"ok   {case} (exit {proc.returncode})", flush=True)
    return reference


def kill_resume_case(cli, store_path, work, threads, reference):
    """Crash mid-run, corrupt the NEWEST checkpoint generation, resume."""
    case = f"kill-resume corrupted-gen threads={threads}"
    case_dir = os.path.join(work, f"resume_t{threads}")
    shutil.rmtree(case_dir, ignore_errors=True)
    os.makedirs(case_dir)
    snap = os.path.join(case_dir, "ckpt.snap")
    flags = [f"--input={store_path}", "--epsilon=0.5", "--workload=all2way",
             "--seed=7", f"--threads={threads}"]

    crash_out = os.path.join(case_dir, "crashed.csv")
    proc = run([cli] + flags + [
        f"--output={crash_out}", f"--checkpoint-out={snap}",
        "--checkpoint-every=1", "--checkpoint-generations=3",
    ], faults="aim_round:n=4")
    if proc.returncode == 0:
        report(case, "crash run unexpectedly succeeded (fixture too small "
                     "for aim_round:n=4?)")
        return
    if not check_exit(case + " (crash leg)", proc):
        return
    if os.path.exists(crash_out):
        report(case, "crashed run left an output artifact behind")
        return
    for generation in (snap, snap + ".gen1", snap + ".gen2"):
        if not os.path.exists(generation):
            report(case, f"missing checkpoint generation {generation}")
            return

    # Damage the newest generation — the single-file scheme would now lose
    # every measurement the crashed run paid privacy budget for.
    flip_byte(snap)

    resume_out = os.path.join(case_dir, "resumed.csv")
    proc = run([cli] + flags + [f"--output={resume_out}",
                                f"--resume={snap}"])
    if proc.returncode != 0:
        report(case, f"resume failed (exit {proc.returncode}): "
                     f"{proc.stderr.strip()[-400:]}")
        return
    if "falling back to checkpoint generation" not in proc.stderr:
        report(case, "resume did not report the generation fallback")
        return
    if read_bytes(resume_out) != reference:
        report(case, "resumed output differs from the fault-free reference")
        return
    print(f"ok   {case}", flush=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--work-dir", default="/tmp/aim_chaos_sweep")
    args = parser.parse_args()

    cli = os.path.join(args.build_dir, "tools", "aim_cli")
    csv2aim = os.path.join(args.build_dir, "tools", "csv2aim")
    for binary in (cli, csv2aim):
        if not os.access(binary, os.X_OK):
            print(f"chaos_sweep: missing binary {binary}", file=sys.stderr)
            return 2

    work = args.work_dir
    shutil.rmtree(work, ignore_errors=True)
    os.makedirs(work)

    # Shared fixture: a precoded CSV converted (fault-free) to a sharded
    # .aim store, so the aim_cli sweep exercises manifest/shard fault points.
    precoded_csv = os.path.join(work, "input.csv")
    domain_sizes = write_precoded_csv(precoded_csv)
    store_path = os.path.join(work, "input.aim")
    proc = run([csv2aim, f"--input={precoded_csv}",
                f"--domain-sizes={domain_sizes}", "--shard-rows=1500",
                f"--output={store_path}"])
    if proc.returncode != 0:
        print(f"chaos_sweep: fixture conversion failed: {proc.stderr}",
              file=sys.stderr)
        return 2

    reference = sweep_aim_cli(cli, store_path, work)
    sweep_csv2aim(csv2aim, precoded_csv, domain_sizes, work)
    if reference is not None:
        for threads in (1, 8):
            kill_resume_case(cli, store_path, work, threads, reference)

    if failures:
        print(f"\nchaos_sweep: {len(failures)} violation(s); work dir kept "
              f"at {work}", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nchaos_sweep: all cases hold; work dir {work}")
    shutil.rmtree(work, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
