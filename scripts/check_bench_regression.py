#!/usr/bin/env python3
"""Perf-smoke gate for the microbenchmark suites.

Compares a fresh ``--benchmark_format=json`` run against a checked-in
baseline (BENCH_infer.json, BENCH_factor.json) and fails when any benchmark
got more than ``--max-ratio`` times slower than its recorded real_time.
Also verifies speedup invariants within the *current* run (so machine speed
cancels out):

  - With no ``--speedup`` flags (the bench_infer invocation): dirty-clique
    caching must keep its advertised win — Calibrate with one dirty clique
    at least ``--min-speedup`` times faster than a full recalibration.
  - With one or more ``--speedup SLOW FAST MIN`` triples (the bench_factor
    invocation): benchmark SLOW must be at least MIN times slower than FAST,
    e.g. the seed odometer kernels vs the flat kernels. The built-in
    Calibrate check is skipped in this mode.

The baseline and current name sets must match exactly: a baseline entry
missing from the current run AND a current benchmark absent from the
baseline are both hard failures (a silently-dropped or silently-unbaselined
benchmark is how perf gates rot). ``--allow-missing`` downgrades both
set-mismatch directions to warnings — for intentionally transitional runs,
e.g. landing a new benchmark before its baseline. Benchmarks named in an
explicit ``--speedup`` triple are exempt from the escape hatch: if one of
those is missing the gate always fails, because the speedup invariant
simply was not checked.

Usage:
  check_bench_regression.py BENCH_infer.json current.json [--max-ratio 2.0]
  check_bench_regression.py BENCH_factor.json current.json \
      --speedup BM_MultiplySameShape/0 BM_MultiplySameShape/1 1.5
  check_bench_regression.py --update BENCH_infer.json current.json

``current.json`` is raw google-benchmark JSON output. ``--update`` rewrites
the baseline from the current run (keeping only the fields the gate reads).
"""

import argparse
import json
import sys

FULL = "BM_CalibrateFullRecalibration/24"
ONE_DIRTY = "BM_CalibrateOneDirtyFar/24"


def load_benchmarks(path):
    """Returns {name: real_time_ns} from either raw google-benchmark JSON or
    a simplified baseline written by --update."""
    with open(path) as f:
        doc = json.load(f)
    benchmarks = doc.get("benchmarks")
    if isinstance(benchmarks, dict):  # simplified baseline
        return {name: entry["real_time"] for name, entry in benchmarks.items()}
    out = {}
    for entry in benchmarks:  # raw google-benchmark output
        if entry.get("run_type", "iteration") != "iteration":
            continue
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[
            entry.get("time_unit", "ns")]
        out[entry["name"]] = entry["real_time"] * scale
    return out


def write_baseline(path, current):
    doc = {
        "comment": "Baseline real_time (ns); regenerate with "
                   "scripts/check_bench_regression.py --update",
        "benchmarks": {
            name: {"real_time": t, "time_unit": "ns"}
            for name, t in sorted(current.items())
        },
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail if current/baseline exceeds this")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required FullRecalibration/OneDirtyFar ratio "
                             "within the current run")
    parser.add_argument("--speedup", nargs=3, action="append", default=[],
                        metavar=("SLOW", "FAST", "MIN"),
                        help="require current[SLOW]/current[FAST] >= MIN; "
                             "repeatable; replaces the built-in Calibrate "
                             "speedup check")
    parser.add_argument("--allow-missing", action="store_true",
                        help="downgrade baseline/current name-set mismatches "
                             "to warnings (benchmarks named in --speedup "
                             "triples still hard-fail when missing)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current run")
    args = parser.parse_args()

    current = load_benchmarks(args.current)
    if args.update:
        write_baseline(args.baseline, current)
        print(f"wrote {args.baseline} ({len(current)} benchmarks)")
        return 0

    failures = []
    baseline = load_benchmarks(args.baseline)

    def set_mismatch(message):
        if args.allow_missing:
            print(f"warning: {message} (--allow-missing)", file=sys.stderr)
        else:
            failures.append(message)

    for name, base_time in sorted(baseline.items()):
        if name not in current:
            set_mismatch(f"{name}: missing from current run")
            continue
        ratio = current[name] / base_time
        status = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"{status:4} {name}: {base_time / 1e3:.1f}us -> "
              f"{current[name] / 1e3:.1f}us ({ratio:.2f}x)")
        if ratio > args.max_ratio:
            failures.append(f"{name}: {ratio:.2f}x slower than baseline "
                            f"(limit {args.max_ratio}x)")
    for name in sorted(set(current) - set(baseline)):
        set_mismatch(f"{name}: present in current run but not in the "
                     f"baseline (regenerate with --update)")

    if args.speedup:
        for slow, fast, min_ratio in args.speedup:
            min_ratio = float(min_ratio)
            if slow not in current or fast not in current:
                failures.append(f"speedup check {slow} vs {fast}: benchmark "
                                f"missing from current run")
                continue
            speedup = current[slow] / current[fast]
            print(f"speedup {slow} / {fast} (current run): {speedup:.2f}x")
            if speedup < min_ratio:
                failures.append(f"{fast} only {speedup:.2f}x faster than "
                                f"{slow} (need {min_ratio}x)")
    elif FULL in current and ONE_DIRTY in current:
        speedup = current[FULL] / current[ONE_DIRTY]
        print(f"dirty-clique caching speedup (current run): {speedup:.2f}x")
        if speedup < args.min_speedup:
            failures.append(f"one-dirty Calibrate only {speedup:.2f}x faster "
                            f"than full recalibration "
                            f"(need {args.min_speedup}x)")
    else:
        failures.append("current run is missing the Calibrate benchmarks")

    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
