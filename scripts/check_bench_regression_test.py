#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py.

Covers the name-set gate: a baseline entry missing from the current run and
a current benchmark absent from the baseline must both hard-fail, the
``--allow-missing`` escape hatch downgrades both to warnings, and a
benchmark named in an explicit ``--speedup`` triple hard-fails when missing
even under ``--allow-missing``.

Run directly (``python3 scripts/check_bench_regression_test.py``) or via
ctest (registered as check_bench_regression_test).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_regression.py")

# The built-in Calibrate speedup check (used when no --speedup triples are
# given) requires these two names; include them in every fixture so the
# tests exercise only the behavior under test.
FULL = "BM_CalibrateFullRecalibration/24"
ONE_DIRTY = "BM_CalibrateOneDirtyFar/24"


def write_baseline(path, times):
    doc = {
        "comment": "test fixture",
        "benchmarks": {
            name: {"real_time": t, "time_unit": "ns"}
            for name, t in times.items()
        },
    }
    with open(path, "w") as f:
        json.dump(doc, f)


def write_current(path, times):
    doc = {
        "benchmarks": [
            {"name": name, "real_time": t, "time_unit": "ns",
             "run_type": "iteration"}
            for name, t in times.items()
        ],
    }
    with open(path, "w") as f:
        json.dump(doc, f)


def run_gate(baseline, current, *extra_args):
    return subprocess.run(
        [sys.executable, SCRIPT, baseline, current, *extra_args],
        capture_output=True, text=True)


class CheckBenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.baseline = os.path.join(self.tmp.name, "baseline.json")
        self.current = os.path.join(self.tmp.name, "current.json")
        self.times = {FULL: 10000.0, ONE_DIRTY: 1000.0, "BM_Other/0": 500.0}

    def tearDown(self):
        self.tmp.cleanup()

    def test_matching_sets_pass(self):
        write_baseline(self.baseline, self.times)
        write_current(self.current, self.times)
        result = run_gate(self.baseline, self.current)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_baseline_name_missing_from_current_fails(self):
        write_baseline(self.baseline, self.times)
        current = dict(self.times)
        del current["BM_Other/0"]
        write_current(self.current, current)
        result = run_gate(self.baseline, self.current)
        self.assertEqual(result.returncode, 1)
        self.assertIn("BM_Other/0: missing from current run", result.stderr)

    def test_current_name_missing_from_baseline_fails(self):
        write_baseline(self.baseline, self.times)
        current = dict(self.times)
        current["BM_New/0"] = 700.0
        write_current(self.current, current)
        result = run_gate(self.baseline, self.current)
        self.assertEqual(result.returncode, 1)
        self.assertIn("BM_New/0", result.stderr)
        self.assertIn("not in the baseline", result.stderr)

    def test_allow_missing_downgrades_both_directions(self):
        write_baseline(self.baseline, self.times)
        current = dict(self.times)
        del current["BM_Other/0"]
        current["BM_New/0"] = 700.0
        write_current(self.current, current)
        result = run_gate(self.baseline, self.current, "--allow-missing")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("warning:", result.stderr)
        self.assertIn("BM_Other/0", result.stderr)
        self.assertIn("BM_New/0", result.stderr)

    def test_speedup_name_missing_fails_even_with_allow_missing(self):
        write_baseline(self.baseline, self.times)
        write_current(self.current, self.times)
        result = run_gate(self.baseline, self.current, "--allow-missing",
                          "--speedup", "BM_Gone/0", "BM_Other/0", "2.0")
        self.assertEqual(result.returncode, 1)
        self.assertIn("BM_Gone/0", result.stderr)

    def test_speedup_gate_checks_ratio(self):
        write_baseline(self.baseline, self.times)
        write_current(self.current, self.times)
        ok = run_gate(self.baseline, self.current,
                      "--speedup", FULL, ONE_DIRTY, "5.0")
        self.assertEqual(ok.returncode, 0, ok.stderr)
        fail = run_gate(self.baseline, self.current,
                        "--speedup", FULL, ONE_DIRTY, "20.0")
        self.assertEqual(fail.returncode, 1)

    def test_regression_still_fails(self):
        write_baseline(self.baseline, self.times)
        current = dict(self.times)
        current["BM_Other/0"] = self.times["BM_Other/0"] * 3.0
        write_current(self.current, current)
        result = run_gate(self.baseline, self.current)
        self.assertEqual(result.returncode, 1)
        self.assertIn("slower than baseline", result.stderr)


if __name__ == "__main__":
    unittest.main()
