#!/usr/bin/env bash
# End-to-end crash/resume smoke test against the real aim_cli binary.
#
# Starts a synthesis run with per-round checkpointing, SIGKILLs it mid-run
# (no cleanup, exactly like a crash or OOM kill), resumes from the
# checkpoint, and verifies the resumed run's synthetic output is
# byte-identical to an uninterrupted run with the same flags and seed.
#
# Usage: scripts/kill_resume_smoke.sh [path-to-aim_cli] [workdir]
# Exits 0 on success; non-zero with a diagnostic on any mismatch.

set -u

CLI="${1:-build/tools/aim_cli}"
WORK="${2:-$(mktemp -d /tmp/aim_kill_resume.XXXXXX)}"
mkdir -p "$WORK"

if [ ! -x "$CLI" ]; then
  echo "kill_resume_smoke: aim_cli not found at '$CLI'" >&2
  exit 2
fi

DATA="$WORK/input.csv"
SNAP="$WORK/checkpoint.snap"
TRACE="$WORK/crashed_trace.jsonl"
FLAGS=(--input="$DATA" --epsilon=1.0 --workload=all3way --seed=7
       --threads=2)

# Deterministic 9-column categorical dataset, large enough that AIM runs
# many rounds at epsilon=1 but small enough to finish in well under a
# minute.
awk 'BEGIN {
  print "a,b,c,d,e,f,g,h,i";
  s = 42;
  for (i = 0; i < 20000; i++) {
    line = "";
    for (j = 0; j < 9; j++) {
      s = (s * 1103515245 + 12345) % 2147483648;
      v = s % (2 + j % 4);
      line = line (j ? "," : "") v;
    }
    print line;
  }
}' > "$DATA"

echo "== uninterrupted reference run"
"$CLI" "${FLAGS[@]}" --output="$WORK/reference.csv" \
  2> "$WORK/reference.log"
status=$?
if [ $status -ne 0 ]; then
  echo "kill_resume_smoke: reference run failed (exit $status)" >&2
  cat "$WORK/reference.log" >&2
  exit 1
fi

echo "== checkpointing run, to be SIGKILLed mid-flight"
"$CLI" "${FLAGS[@]}" --output="$WORK/crashed.csv" \
  --checkpoint-out="$SNAP" --checkpoint-every=1 --trace-out="$TRACE" \
  2> "$WORK/crashed.log" &
pid=$!

# Kill as soon as the trace shows round activity past the baseline
# checkpoint; fall back to a short grace period for very fast runs.
killed=0
for _ in $(seq 1 200); do
  if ! kill -0 "$pid" 2>/dev/null; then
    break  # finished before we could kill it
  fi
  rounds=$(grep -c '"type":"aim_round"' "$TRACE" 2>/dev/null || true)
  if [ "${rounds:-0}" -ge 1 ] && [ -s "$SNAP" ]; then
    kill -9 "$pid" 2>/dev/null && killed=1
    break
  fi
  sleep 0.01
done
wait "$pid" 2>/dev/null

if [ "$killed" -ne 1 ]; then
  if [ ! -s "$SNAP" ]; then
    echo "kill_resume_smoke: run finished before any checkpoint was" \
         "written; nothing to resume" >&2
    exit 1
  fi
  echo "   (run finished before the kill; resuming from its last" \
       "checkpoint instead)"
fi

if [ ! -s "$SNAP" ]; then
  echo "kill_resume_smoke: no checkpoint file after the kill" >&2
  exit 1
fi

echo "== resuming from $SNAP"
"$CLI" "${FLAGS[@]}" --output="$WORK/resumed.csv" --resume="$SNAP" \
  2> "$WORK/resumed.log"
status=$?
if [ $status -ne 0 ]; then
  echo "kill_resume_smoke: resumed run failed (exit $status)" >&2
  cat "$WORK/resumed.log" >&2
  exit 1
fi
grep -q "resuming from" "$WORK/resumed.log" || {
  echo "kill_resume_smoke: resumed run did not report resuming" >&2
  exit 1
}

echo "== comparing synthetic outputs"
if ! cmp -s "$WORK/reference.csv" "$WORK/resumed.csv"; then
  echo "kill_resume_smoke: FAIL — resumed output differs from the" \
       "uninterrupted run" >&2
  diff "$WORK/reference.csv" "$WORK/resumed.csv" | head -20 >&2
  exit 1
fi

echo "kill_resume_smoke: PASS (outputs byte-identical; workdir $WORK)"
exit 0
