#!/usr/bin/env bash
# End-to-end smoke test for the aimd daemon against the real binaries.
#
# Phase 1 (byte-identity): start aimd, submit a synthesis job over HTTP,
# poll it to completion, fetch the synthetic CSV, and verify it is
# byte-identical to an aim_cli run with the same dataset, flags, and seed
# — the daemon is the CLI pipeline behind a socket, nothing more.
#
# Phase 2 (graceful SIGTERM): submit a second job, SIGTERM the daemon
# mid-run, and verify (a) the daemon drains and exits 0, (b) the job's
# newest checkpoint generation is valid — proven the strong way, by
# resuming it with aim_cli and comparing the finished output
# byte-for-byte against the uninterrupted reference. Daemon checkpoints
# are CLI-portable by construction (same fingerprint inputs).
#
# Usage: scripts/aimd_smoke.sh [path-to-aimd] [path-to-aim_cli] [workdir]
# Exits 0 on success; non-zero with a diagnostic on any mismatch.

set -u

AIMD="${1:-build/tools/aimd}"
CLI="${2:-build/tools/aim_cli}"
WORK="${3:-$(mktemp -d /tmp/aimd_smoke.XXXXXX)}"
mkdir -p "$WORK"

for bin in "$AIMD" "$CLI"; do
  if [ ! -x "$bin" ]; then
    echo "aimd_smoke: binary not found at '$bin'" >&2
    exit 2
  fi
done

DATA="$WORK/input.csv"
EPSILON=1.0
WORKLOAD=all3way
SEED=7

# Deterministic 9-column categorical dataset: large enough that AIM runs
# many rounds at epsilon=1 (so SIGTERM has a window to land mid-job),
# small enough to finish in well under a minute.
awk 'BEGIN {
  print "a,b,c,d,e,f,g,h,i";
  s = 42;
  for (i = 0; i < 20000; i++) {
    line = "";
    for (j = 0; j < 9; j++) {
      s = (s * 1103515245 + 12345) % 2147483648;
      v = s % (2 + j % 4);
      line = line (j ? "," : "") v;
    }
    print line;
  }
}' > "$DATA"

DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null
  fi
}
trap cleanup EXIT

fail() {
  echo "aimd_smoke: FAIL — $1" >&2
  [ -f "$WORK/aimd.log" ] && tail -20 "$WORK/aimd.log" >&2
  exit 1
}

echo "== uninterrupted aim_cli reference run"
"$CLI" --input="$DATA" --epsilon="$EPSILON" --workload="$WORKLOAD" \
  --seed="$SEED" --threads=2 --output="$WORK/reference.csv" \
  2> "$WORK/reference.log" || {
  cat "$WORK/reference.log" >&2
  fail "reference aim_cli run failed"
}

echo "== starting aimd (ephemeral port)"
"$AIMD" --port=0 --work-dir="$WORK/daemon" --job-workers=1 --threads=2 \
  --default-tenant-rho=100 2> "$WORK/aimd.log" &
DAEMON_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' \
         "$WORK/aimd.log" 2>/dev/null | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "aimd died during startup"
  sleep 0.05
done
[ -n "$PORT" ] || fail "aimd never reported its listening port"
BASE="http://127.0.0.1:$PORT"
curl -sf "$BASE/healthz" > /dev/null || fail "healthz probe failed"

submit_job() {
  curl -sf -X POST "$BASE/jobs" -d '{
    "dataset": "'"$DATA"'",
    "epsilon": '"$EPSILON"',
    "workload": "'"$WORKLOAD"'",
    "seed": '"$SEED"'
  }'
}

job_field() {  # job_field <id> <key>  -> bare string/number value
  curl -sf "$BASE/jobs/$1" |
    sed -n 's/.*"'"$2"'":"\{0,1\}\([^,"}]*\)"\{0,1\}[,}].*/\1/p'
}

echo "== phase 1: submit over HTTP, poll, fetch, compare to aim_cli"
RESPONSE=$(submit_job) || fail "job submission was refused"
JOB1=$(echo "$RESPONSE" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$JOB1" ] || fail "submission response carried no job id: $RESPONSE"

STATE=""
for _ in $(seq 1 1200); do
  STATE=$(job_field "$JOB1" state)
  case "$STATE" in
    done) break ;;
    failed|cancelled) fail "job $JOB1 ended in state '$STATE'" ;;
  esac
  sleep 0.1
done
[ "$STATE" = "done" ] || fail "job $JOB1 never finished (state '$STATE')"

curl -sf "$BASE/jobs/$JOB1/result" > "$WORK/daemon.csv" ||
  fail "could not fetch job $JOB1 result"
cmp -s "$WORK/reference.csv" "$WORK/daemon.csv" ||
  fail "daemon output differs from the aim_cli run with the same spec"
echo "   daemon output is byte-identical to aim_cli"

# The job's trace stream is non-empty JSONL with round records.
EVENTS=$(curl -sf "$BASE/jobs/$JOB1/events")
echo "$EVENTS" | grep -q '"type":"aim_round"' ||
  fail "job $JOB1 event stream has no aim_round records"

echo "== phase 2: SIGTERM mid-job, then resume the checkpoint with aim_cli"
RESPONSE=$(submit_job) || fail "second submission was refused"
JOB2=$(echo "$RESPONSE" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$JOB2" ] || fail "second submission carried no job id: $RESPONSE"

# Wait until the job has completed at least one round (so the SIGTERM
# lands mid-run and the wind-down has measurements to checkpoint).
for _ in $(seq 1 1200); do
  ROUNDS=$(job_field "$JOB2" rounds)
  [ "${ROUNDS:-0}" -ge 1 ] 2>/dev/null && break
  STATE=$(job_field "$JOB2" state)
  [ "$STATE" = "done" ] && break  # too fast to interrupt; still resumable
  sleep 0.05
done

kill -TERM "$DAEMON_PID"
DRAIN_OK=1
for _ in $(seq 1 1200); do
  kill -0 "$DAEMON_PID" 2>/dev/null || { DRAIN_OK=0; break; }
  sleep 0.1
done
[ "$DRAIN_OK" -eq 0 ] || fail "aimd did not exit within 120s of SIGTERM"
wait "$DAEMON_PID"
EXIT=$?
DAEMON_PID=""
[ "$EXIT" -eq 0 ] || fail "aimd exited $EXIT after SIGTERM (want 0: drained)"

CHECKPOINT="$WORK/daemon/jobs/$JOB2/checkpoint"
NEWEST=$(ls -1 "$CHECKPOINT"* 2>/dev/null | tail -1)
[ -n "$NEWEST" ] || fail "no checkpoint ladder for job $JOB2 after SIGTERM"
echo "   daemon drained; newest generation: $NEWEST"

# The strong validity check: aim_cli accepts the daemon's newest valid
# generation and finishes the run to the same bytes as the reference.
"$CLI" --input="$DATA" --epsilon="$EPSILON" --workload="$WORKLOAD" \
  --seed="$SEED" --threads=2 --resume="$CHECKPOINT" \
  --output="$WORK/resumed.csv" 2> "$WORK/resumed.log" || {
  cat "$WORK/resumed.log" >&2
  fail "aim_cli could not resume the daemon's checkpoint"
}
grep -q "resuming from" "$WORK/resumed.log" ||
  fail "resumed run did not report resuming from a checkpoint"
cmp -s "$WORK/reference.csv" "$WORK/resumed.csv" ||
  fail "resumed output differs from the uninterrupted reference"

echo "aimd_smoke: PASS (byte-identity + graceful SIGTERM; workdir $WORK)"
exit 0
