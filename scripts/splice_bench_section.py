#!/usr/bin/env python3
"""Replaces one binary's section in bench_output.txt with a fresh run's
output (used to refresh a single bench without re-running the whole sweep).

usage: splice_bench_section.py bench_output.txt section_name new_output.txt
"""
import sys

def main():
    path, section, new_path = sys.argv[1], sys.argv[2], sys.argv[3]
    lines = open(path).read().split("\n")
    new_body = open(new_path).read().rstrip("\n")
    out, i, replaced = [], 0, False
    while i < len(lines):
        line = lines[i]
        if line.startswith("=====") and section in line:
            out.append(line)
            out.append(new_body)
            out.append("")
            i += 1
            while i < len(lines) and not lines[i].startswith("====="):
                i += 1
            replaced = True
        else:
            out.append(line)
            i += 1
    open(path, "w").write("\n".join(out))
    print("replaced" if replaced else "section not found")

if __name__ == "__main__":
    main()
