#!/usr/bin/env python3
"""Appends the measured bench tables to EXPERIMENTS.md (run after the
default sweep has produced bench_output.txt)."""

SECTIONS = [
    ("bench_table2_datasets", "Table 2 (measured)"),
    ("bench_fig1_all3way", "Figure 1 (measured)"),
    ("bench_fig2_target", "Figure 2 (measured)"),
    ("bench_fig3_skewed", "Figure 3 (measured)"),
    ("bench_fig4ab_capacity", "Figure 4(a,b) (measured)"),
    ("bench_fig4c_uncertainty", "Figure 4(c) (measured, summary only)"),
    ("bench_fig5_subsampling", "Figure 5 (measured)"),
    ("bench_table3_structural_zeros", "Table 3 (measured)"),
    ("bench_fig6_runtime", "Figure 6 (measured)"),
    ("bench_fig7_pgm_vs_rp", "Figure 7 (measured)"),
    ("bench_ablation_aim", "Ablations (measured)"),
]


def extract(lines, name):
    out, active = [], False
    for line in lines:
        if line.startswith("====="):
            active = name in line
            continue
        if active:
            out.append(line)
    # Trim trailing blanks.
    while out and not out[-1].strip():
        out.pop()
    return out


def main():
    bench = open("bench_output.txt").read().split("\n")
    doc = open("EXPERIMENTS.md").read()
    marker = "<!-- measured -->"
    assert marker in doc
    parts = [doc.split(marker)[0], marker, "\n"]
    for name, title in SECTIONS:
        body = extract(bench, name)
        if name == "bench_fig4c_uncertainty":
            # The full per-marginal table is long; keep the summary block.
            keep, seen_summary = [], False
            for line in body:
                if line.startswith("# Summary"):
                    seen_summary = True
                if seen_summary:
                    keep.append(line)
            body = keep if keep else body
        if not body:
            continue
        parts.append(f"### {title}\n\n```\n" + "\n".join(body) + "\n```\n\n")
    open("EXPERIMENTS.md", "w").write("".join(parts))
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
