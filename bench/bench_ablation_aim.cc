// Ablation study of AIM's design decisions (Section 4): each switch
// disables one innovation — downward-closure candidates, workload weights,
// the expected-noise penalty in the quality score, budget annealing, or the
// intelligent initialization — and reports the resulting workload error
// relative to full AIM.

#include <iostream>

#include "bench_common.h"
#include "eval/experiment.h"
#include "mechanisms/aim.h"

int main(int argc, char** argv) {
  using namespace aim;
  bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  if (flags.datasets.empty()) flags.datasets = {"adult", "titanic"};
  std::vector<double> epsilons = bench::EpsilonGrid(flags);

  struct Variant {
    const char* name;
    void (*apply)(AimOptions*);
  };
  const Variant variants[] = {
      {"AIM (full)", [](AimOptions*) {}},
      {"no downward closure",
       [](AimOptions* o) { o->use_downward_closure = false; }},
      {"no workload weights",
       [](AimOptions* o) { o->use_workload_weights = false; }},
      {"MWEM-style penalty",
       [](AimOptions* o) { o->use_noise_penalty = false; }},
      {"no annealing", [](AimOptions* o) { o->use_annealing = false; }},
      {"no initialization",
       [](AimOptions* o) { o->use_initialization = false; }},
  };

  std::cout << "# AIM ablations — workload error on ALL-3WAY\n";
  TablePrinter table(
      {"dataset", "epsilon", "variant", "error_mean", "vs_full"});
  for (const SimulatedData& sim : bench::LoadDatasets(flags)) {
    Workload workload = bench::MakeAll3Way(sim);
    for (double eps : epsilons) {
      double full_error = 0.0;
      for (const Variant& variant : variants) {
        AimOptions options;
        options.max_size_mb = flags.max_size_mb;
        options.round_estimation.max_iters = flags.round_iters;
        options.final_estimation.max_iters = flags.final_iters;
        options.record_candidates = false;
        variant.apply(&options);
        AimMechanism mechanism(options);
        TrialStats stats =
            RunTrials(mechanism, sim.data, workload, eps, kPaperDelta,
                      flags.trials, flags.seed + 1);
        if (std::string(variant.name) == "AIM (full)") {
          full_error = stats.mean;
        }
        table.AddRow({sim.name, FormatG(eps), variant.name,
                      FormatG(stats.mean),
                      FormatG(stats.mean / full_error, 3)});
        std::cerr << "[ablation] " << sim.name << " eps=" << eps << " "
                  << variant.name << " error=" << stats.mean << "\n";
      }
    }
  }
  table.Print(std::cout, flags.csv);
  return 0;
}
