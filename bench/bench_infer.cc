// Microbenchmarks for the inference engine (DESIGN.md "Inference engine"):
// dirty-clique message caching in MarkovRandomField::Calibrate() and the
// batched AnswerMarginals API. Checked-in baselines live in
// BENCH_infer.json; the CI perf-smoke step re-runs these and fails on >2x
// regression (scripts/check_bench_regression.py).
//
// The BM_Calibrate* trio prices AIM's late-round update pattern — one
// measured clique changes, the model re-calibrates, one marginal is read:
//  - FullRecalibration: inference cache OFF, the seed behavior (every
//    message and belief recomputed eagerly on each Calibrate).
//  - OneDirtyFar: cache ON, dirty clique at one chain end, query at the
//    other — the worst cached case (the whole dirty->query path recomputes).
//  - OneDirtySame: cache ON, query the dirtied clique itself — the best
//    case (every needed message survives; only one belief recomputes).

#include <benchmark/benchmark.h>

#include <vector>

#include "marginal/attr_set.h"
#include "parallel/thread_pool.h"
#include "pgm/inference.h"
#include "pgm/markov_random_field.h"
#include "util/rng.h"

namespace aim {
namespace {

// Chain of k overlapping triple cliques {i, i+1, i+2} over attributes of
// size 6 (216-cell clique tables, 36-cell separators) with Gaussian
// log-potentials.
MarkovRandomField ChainModel(int k, uint64_t seed) {
  std::vector<int> sizes(k + 2, 6);
  Domain domain = Domain::WithSizes(sizes);
  std::vector<AttrSet> cliques;
  for (int i = 0; i < k; ++i) cliques.push_back(AttrSet({i, i + 1, i + 2}));
  MarkovRandomField model(domain, cliques);
  Rng rng(seed);
  for (int c = 0; c < model.num_cliques(); ++c) {
    Factor potential = model.potential(c);
    for (double& v : potential.mutable_values()) v = rng.Gaussian(0.0, 0.5);
    model.SetPotential(c, std::move(potential));
  }
  model.set_total(10000.0);
  model.Calibrate();
  return model;
}

// One update->calibrate->query cycle. The delta alternates sign so the
// potentials stay bounded across benchmark iterations.
void UpdateCalibrateQuery(MarkovRandomField& model, const Factor& delta,
                          int dirty_clique, const AttrSet& query,
                          double scale) {
  model.AccumulatePotential(dirty_clique, delta, scale);
  model.Calibrate();
  benchmark::DoNotOptimize(model.MarginalVector(query));
}

void BM_CalibrateFullRecalibration(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  SetParallelThreads(1);
  SetInferenceCacheEnabled(false);
  MarkovRandomField model = ChainModel(k, 1);
  Factor delta = model.potential(0);
  for (double& v : delta.mutable_values()) v = 0.01;
  const AttrSet query = model.tree().cliques[model.num_cliques() - 1];
  double scale = 1.0;
  for (auto _ : state) {
    UpdateCalibrateQuery(model, delta, 0, query, scale);
    scale = -scale;
  }
  SetInferenceCacheEnabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalibrateFullRecalibration)->Arg(24)->Unit(benchmark::kMicrosecond);

void BM_CalibrateOneDirtyFar(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  SetParallelThreads(1);
  SetInferenceCacheEnabled(true);
  MarkovRandomField model = ChainModel(k, 1);
  Factor delta = model.potential(0);
  for (double& v : delta.mutable_values()) v = 0.01;
  const AttrSet query = model.tree().cliques[model.num_cliques() - 1];
  double scale = 1.0;
  for (auto _ : state) {
    UpdateCalibrateQuery(model, delta, 0, query, scale);
    scale = -scale;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalibrateOneDirtyFar)->Arg(24)->Unit(benchmark::kMicrosecond);

void BM_CalibrateOneDirtySame(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  SetParallelThreads(1);
  SetInferenceCacheEnabled(true);
  MarkovRandomField model = ChainModel(k, 1);
  const int mid = model.num_cliques() / 2;
  Factor delta = model.potential(mid);
  for (double& v : delta.mutable_values()) v = 0.01;
  const AttrSet query = model.tree().cliques[mid];
  double scale = 1.0;
  for (auto _ : state) {
    UpdateCalibrateQuery(model, delta, mid, query, scale);
    scale = -scale;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalibrateOneDirtySame)->Arg(24)->Unit(benchmark::kMicrosecond);

// Query mix for the batched-answer benches: every clique interleaved with
// out-of-clique (variable elimination) pairs. Interleaving matters: the
// batched path splits the queries into contiguous chunks, so clustering all
// the expensive VE queries together would serialize them on one worker.
std::vector<AttrSet> BenchQueries(const MarkovRandomField& model) {
  std::vector<AttrSet> queries;
  const int d = model.domain().num_attributes();
  for (const AttrSet& clique : model.tree().cliques) {
    queries.push_back(clique);
    const int i = static_cast<int>(queries.size()) % (d - 5);
    queries.push_back(AttrSet({i, i + 5}));
  }
  return queries;
}

void BM_AnswerMarginalsSequential(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  SetParallelThreads(threads);
  SetInferenceCacheEnabled(true);
  MarkovRandomField model = ChainModel(16, 2);
  std::vector<AttrSet> queries = BenchQueries(model);
  for (auto _ : state) {
    for (const AttrSet& q : queries) {
      benchmark::DoNotOptimize(model.Marginal(q));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_AnswerMarginalsSequential)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_AnswerMarginalsBatched(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  SetParallelThreads(threads);
  SetInferenceCacheEnabled(true);
  MarkovRandomField model = ChainModel(16, 2);
  std::vector<AttrSet> queries = BenchQueries(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.AnswerMarginals(queries));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_AnswerMarginalsBatched)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aim

BENCHMARK_MAIN();
