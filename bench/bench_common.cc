#include "bench_common.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "eval/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "robust/fault.h"
#include "util/logging.h"
#include "util/strings.h"

namespace aim {
namespace bench {
namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [flags]\n"
      << "  --scale=F         dataset scale vs Table 2 (default 0.02)\n"
      << "  --trials=N        trials per configuration (default 1)\n"
      << "  --csv             machine-readable CSV output\n"
      << "  --seed=N          base seed (default 0)\n"
      << "  --eps=a,b,c       epsilon grid (default 0.1,1,10; --full: paper"
         " grid)\n"
      << "  --mechanisms=a,b  mechanism subset (default: standard roster)\n"
      << "  --datasets=a,b    dataset subset (default: all six)\n"
      << "  --max_size_mb=F   PGM model capacity (default 4)\n"
      << "  --mwem_rounds=N   rounds for MWEM/GEM variants (0 = 2d)\n"
      << "  --round_iters=N --final_iters=N --rp_rows=N --rp_iters=N\n"
      << "  --threads=N       worker threads (default: AIM_THREADS env or"
         " hardware)\n"
      << "  --trace-out=F     per-round JSONL trace (- or stderr for"
         " stderr)\n"
      << "  --metrics-out=F   metrics JSON dump at exit (- for stdout)\n"
      << "  --checkpoint-out=F --checkpoint-every=N --resume=F\n"
      << "                    AIM crash-safe snapshots (see DESIGN.md)\n"
      << "  --deadline-s=F    AIM wall-clock budget per run\n"
      << "  --full            paper-fidelity settings (slow)\n";
  std::exit(2);
}

// Where ParseFlags sends the end-of-process metrics dump (empty = off).
// Written once from ParseFlags before the atexit handler can run.
std::string* MetricsOutPath() {
  static std::string* path = new std::string;
  return path;
}

void DumpMetricsAtExit() {
  const std::string& path = *MetricsOutPath();
  if (path.empty()) return;
  if (path == "-") {
    MetricsRegistry::Global().WriteJson(std::cout);
    std::cout << "\n";
    return;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot open metrics output '" << path << "'\n";
    return;
  }
  MetricsRegistry::Global().WriteJson(out);
  out << "\n";
}

bool ConsumePrefix(const std::string& arg, const std::string& prefix,
                   std::string* rest) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *rest = arg.substr(prefix.size());
  return true;
}

std::vector<double> ParseDoubleList(const std::string& value,
                                    const char* argv0) {
  std::vector<double> out;
  for (const std::string& part : SplitString(value, ',')) {
    double v = 0.0;
    if (!ParseDouble(part, &v)) Usage(argv0);
    out.push_back(v);
  }
  return out;
}

}  // namespace

BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") Usage(argv[0]);
    if (arg == "--csv") {
      flags.csv = true;
    } else if (arg == "--full") {
      flags.full = true;
    } else if (ConsumePrefix(arg, "--scale=", &value)) {
      if (!ParseDouble(value, &flags.record_scale)) Usage(argv[0]);
    } else if (ConsumePrefix(arg, "--trials=", &value)) {
      int64_t v;
      if (!ParseInt64(value, &v)) Usage(argv[0]);
      flags.trials = static_cast<int>(v);
    } else if (ConsumePrefix(arg, "--seed=", &value)) {
      int64_t v;
      if (!ParseInt64(value, &v)) Usage(argv[0]);
      flags.seed = static_cast<uint64_t>(v);
    } else if (ConsumePrefix(arg, "--eps=", &value)) {
      flags.epsilons = ParseDoubleList(value, argv[0]);
    } else if (ConsumePrefix(arg, "--mechanisms=", &value)) {
      flags.mechanisms = SplitString(value, ',');
    } else if (ConsumePrefix(arg, "--datasets=", &value)) {
      flags.datasets = SplitString(value, ',');
    } else if (ConsumePrefix(arg, "--max_size_mb=", &value)) {
      if (!ParseDouble(value, &flags.max_size_mb)) Usage(argv[0]);
    } else if (ConsumePrefix(arg, "--mwem_rounds=", &value)) {
      int64_t v;
      if (!ParseInt64(value, &v)) Usage(argv[0]);
      flags.mwem_rounds = static_cast<int>(v);
    } else if (ConsumePrefix(arg, "--round_iters=", &value)) {
      int64_t v;
      if (!ParseInt64(value, &v)) Usage(argv[0]);
      flags.round_iters = static_cast<int>(v);
    } else if (ConsumePrefix(arg, "--final_iters=", &value)) {
      int64_t v;
      if (!ParseInt64(value, &v)) Usage(argv[0]);
      flags.final_iters = static_cast<int>(v);
    } else if (ConsumePrefix(arg, "--rp_rows=", &value)) {
      int64_t v;
      if (!ParseInt64(value, &v)) Usage(argv[0]);
      flags.rp_rows = static_cast<int>(v);
    } else if (ConsumePrefix(arg, "--rp_iters=", &value)) {
      int64_t v;
      if (!ParseInt64(value, &v)) Usage(argv[0]);
      flags.rp_iters = static_cast<int>(v);
    } else if (ConsumePrefix(arg, "--rp_max_cells=", &value)) {
      if (!ParseInt64(value, &flags.rp_max_cells)) Usage(argv[0]);
    } else if (ConsumePrefix(arg, "--threads=", &value)) {
      int64_t v;
      if (!ParseInt64(value, &v) || v < 0) Usage(argv[0]);
      flags.threads = static_cast<int>(v);
    } else if (ConsumePrefix(arg, "--trace-out=", &value)) {
      flags.trace_out = value;
    } else if (ConsumePrefix(arg, "--metrics-out=", &value)) {
      flags.metrics_out = value;
    } else if (ConsumePrefix(arg, "--checkpoint-out=", &value)) {
      flags.checkpoint_out = value;
    } else if (ConsumePrefix(arg, "--checkpoint-every=", &value)) {
      int64_t v;
      if (!ParseInt64(value, &v) || v <= 0) Usage(argv[0]);
      flags.checkpoint_every = static_cast<int>(v);
    } else if (ConsumePrefix(arg, "--resume=", &value)) {
      flags.resume = value;
    } else if (ConsumePrefix(arg, "--deadline-s=", &value)) {
      if (!ParseDouble(value, &flags.deadline_s)) Usage(argv[0]);
    } else {
      Usage(argv[0]);
    }
  }
  if (flags.full) {
    flags.record_scale = 1.0;
    flags.trials = 5;
    flags.max_size_mb = 80.0;
    flags.round_iters = 100;
    flags.final_iters = 1000;
    flags.rp_rows = 1000;
    flags.rp_iters = 200;
    flags.rp_max_cells = 200000;
    flags.mwem_rounds = 0;  // the mechanisms' own 2d default
  }
  SetParallelThreads(flags.threads);
  InitFaultsFromEnv();
  if (!flags.trace_out.empty()) {
    // Process-lifetime sink. Held in a static so its destructor runs at
    // exit and flushes the underlying file; the global pointer is cleared
    // first so no event can race the teardown.
    static std::unique_ptr<JsonlTraceSink> sink;
    static struct SinkUninstaller {
      ~SinkUninstaller() { SetGlobalTraceSink(nullptr); }
    } uninstaller;
    (void)uninstaller;
    sink = std::make_unique<JsonlTraceSink>(flags.trace_out);
    if (!sink->ok()) {
      std::cerr << "error: cannot open trace output '" << flags.trace_out
                << "'\n";
      std::exit(2);
    }
    SetGlobalTraceSink(sink.get());
  } else {
    InitTraceSinkFromEnv();
  }
  if (!flags.metrics_out.empty()) {
    SetMetricsEnabled(true);
    *MetricsOutPath() = flags.metrics_out;
    std::atexit(&DumpMetricsAtExit);
  }
  return flags;
}

RegistryOptions ToRegistryOptions(const BenchFlags& flags) {
  RegistryOptions options;
  options.max_size_mb = flags.max_size_mb;
  options.round_iters = flags.round_iters;
  options.final_iters = flags.final_iters;
  options.rp_rows = flags.rp_rows;
  options.rp_iters = flags.rp_iters;
  options.mwem_rounds = flags.mwem_rounds;
  options.rp_max_cells = flags.rp_max_cells;
  options.checkpoint_path = flags.checkpoint_out;
  options.checkpoint_every_rounds = flags.checkpoint_every;
  options.resume_path = flags.resume;
  options.deadline_seconds = flags.deadline_s;
  return options;
}

std::vector<double> EpsilonGrid(const BenchFlags& flags) {
  if (!flags.epsilons.empty()) return flags.epsilons;
  return flags.full ? PaperEpsilonGrid() : SmallEpsilonGrid();
}

std::vector<SimulatedData> LoadDatasets(const BenchFlags& flags) {
  SimulatorOptions options;
  options.record_scale = flags.record_scale;
  std::vector<SimulatedData> out;
  for (PaperDataset dataset : AllPaperDatasets()) {
    std::string name = PaperDatasetName(dataset);
    if (!flags.datasets.empty()) {
      bool wanted = false;
      for (const std::string& d : flags.datasets) wanted |= (d == name);
      if (!wanted) continue;
    }
    out.push_back(MakePaperDataset(dataset, options));
  }
  if (out.empty()) {
    std::cerr << "no datasets selected\n";
    std::exit(2);
  }
  return out;
}

Workload MakeAll3Way(const SimulatedData& sim) {
  return AllKWayWorkload(sim.data.domain(), 3);
}

Workload MakeTarget(const SimulatedData& sim) {
  return TargetWorkload(sim.data.domain(), 3, sim.target_attribute);
}

Workload MakeSkewed(const SimulatedData& sim) {
  // Fixed seed (Section 6.1): the workload is identical across mechanisms
  // and trials.
  return SkewedWorkload(sim.data.domain(), 3, 256, 20220524);
}

std::vector<std::string> MechanismRoster(const BenchFlags& flags) {
  if (!flags.mechanisms.empty()) return flags.mechanisms;
  return StandardMechanismNames();
}

}  // namespace bench
}  // namespace aim
