// Google-benchmark microbenchmarks for the performance-critical kernels:
// factor algebra, belief propagation, junction-tree construction,
// mirror-descent estimation, marginal computation, and synthetic-data
// generation.

#include <benchmark/benchmark.h>

#include "data/simulators.h"
#include "factor/factor.h"
#include "marginal/marginal.h"
#include "pgm/estimation.h"
#include "pgm/junction_tree.h"
#include "pgm/markov_random_field.h"
#include "pgm/synthetic.h"
#include "util/rng.h"

namespace aim {
namespace {

Factor RandomFactor(std::vector<int> attrs, std::vector<int> sizes,
                    uint64_t seed) {
  Rng rng(seed);
  Factor f(std::move(attrs), std::move(sizes));
  for (double& v : f.mutable_values()) v = rng.Gaussian();
  return f;
}

void BM_FactorMultiply(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Factor a = RandomFactor({0, 1}, {n, n}, 1);
  Factor b = RandomFactor({1, 2}, {n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_FactorMultiply)->Arg(8)->Arg(32)->Arg(64);

void BM_FactorLogSumExpTo(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Factor a = RandomFactor({0, 1, 2}, {n, n, n}, 3);
  AttrSet target({0, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.LogSumExpTo(target));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_FactorLogSumExpTo)->Arg(8)->Arg(32);

void BM_JunctionTreeBuild(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  Domain domain = Domain::WithSizes(std::vector<int>(d, 8));
  std::vector<AttrSet> cliques;
  for (int i = 0; i + 2 < d; i += 2) cliques.push_back(AttrSet({i, i + 1, i + 2}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildJunctionTree(domain, cliques));
  }
}
BENCHMARK(BM_JunctionTreeBuild)->Arg(8)->Arg(16)->Arg(32);

void BM_JtSizeOracle(benchmark::State& state) {
  const int d = 16;
  Domain domain = Domain::WithSizes(std::vector<int>(d, 12));
  std::vector<AttrSet> cliques;
  for (int i = 0; i + 1 < d; ++i) cliques.push_back(AttrSet({i, i + 1}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(JtSizeMb(domain, cliques));
  }
}
BENCHMARK(BM_JtSizeOracle);

void BM_BeliefPropagation(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  Domain domain = Domain::WithSizes(std::vector<int>(d, 6));
  std::vector<AttrSet> cliques;
  for (int i = 0; i + 1 < d; ++i) cliques.push_back(AttrSet({i, i + 1}));
  MarkovRandomField model(domain, cliques);
  Rng rng(4);
  for (int c = 0; c < model.num_cliques(); ++c) {
    Factor p = model.potential(c);
    for (double& v : p.mutable_values()) v = rng.Gaussian();
    model.SetPotential(c, std::move(p));
  }
  for (auto _ : state) {
    model.Calibrate();
    benchmark::DoNotOptimize(model.LogPartition());
  }
}
BENCHMARK(BM_BeliefPropagation)->Arg(8)->Arg(16);

void BM_ComputeMarginal(benchmark::State& state) {
  Rng rng(5);
  Domain domain = Domain::WithSizes({8, 8, 8, 8, 8, 8});
  Dataset data = SampleRandomBayesNet(domain, state.range(0), 2, 0.4, rng);
  AttrSet r({0, 2, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMarginal(data, r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeMarginal)->Arg(10000)->Arg(100000);

void BM_MirrorDescentEstimation(benchmark::State& state) {
  Rng rng(6);
  Domain domain = Domain::WithSizes({4, 4, 4, 4, 4});
  Dataset data = SampleRandomBayesNet(domain, 5000, 2, 0.4, rng);
  std::vector<Measurement> ms;
  for (const AttrSet& r :
       {AttrSet({0, 1}), AttrSet({1, 2}), AttrSet({2, 3}), AttrSet({3, 4})}) {
    ms.push_back({r, ComputeMarginal(data, r), 10.0});
  }
  EstimationOptions options;
  options.max_iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateMrf(domain, ms, 5000.0, options));
  }
}
BENCHMARK(BM_MirrorDescentEstimation)->Arg(10)->Arg(50);

void BM_SyntheticGeneration(benchmark::State& state) {
  Rng rng(7);
  Domain domain = Domain::WithSizes({4, 4, 4, 4, 4, 4});
  std::vector<AttrSet> cliques;
  for (int i = 0; i + 1 < 6; ++i) cliques.push_back(AttrSet({i, i + 1}));
  MarkovRandomField model(domain, cliques);
  for (int c = 0; c < model.num_cliques(); ++c) {
    Factor p = model.potential(c);
    for (double& v : p.mutable_values()) v = rng.Gaussian();
    model.SetPotential(c, std::move(p));
  }
  model.set_total(static_cast<double>(state.range(0)));
  model.Calibrate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenerateSyntheticData(model, state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SyntheticGeneration)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace aim

BENCHMARK_MAIN();
