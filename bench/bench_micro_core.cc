// Google-benchmark microbenchmarks for the performance-critical kernels:
// factor algebra, belief propagation, junction-tree construction,
// mirror-descent estimation, marginal computation, and synthetic-data
// generation.

#include <benchmark/benchmark.h>

#include "data/simulators.h"
#include "factor/factor.h"
#include "marginal/marginal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel.h"
#include "parallel/thread_pool.h"
#include "pgm/estimation.h"
#include "pgm/junction_tree.h"
#include "pgm/markov_random_field.h"
#include "pgm/synthetic.h"
#include "robust/fault.h"
#include "util/rng.h"

namespace aim {
namespace {

Factor RandomFactor(std::vector<int> attrs, std::vector<int> sizes,
                    uint64_t seed) {
  Rng rng(seed);
  Factor f(std::move(attrs), std::move(sizes));
  for (double& v : f.mutable_values()) v = rng.Gaussian();
  return f;
}

void BM_FactorMultiply(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Factor a = RandomFactor({0, 1}, {n, n}, 1);
  Factor b = RandomFactor({1, 2}, {n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_FactorMultiply)->Arg(8)->Arg(32)->Arg(64);

void BM_FactorLogSumExpTo(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Factor a = RandomFactor({0, 1, 2}, {n, n, n}, 3);
  AttrSet target({0, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.LogSumExpTo(target));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_FactorLogSumExpTo)->Arg(8)->Arg(32);

void BM_JunctionTreeBuild(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  Domain domain = Domain::WithSizes(std::vector<int>(d, 8));
  std::vector<AttrSet> cliques;
  for (int i = 0; i + 2 < d; i += 2) cliques.push_back(AttrSet({i, i + 1, i + 2}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildJunctionTree(domain, cliques));
  }
}
BENCHMARK(BM_JunctionTreeBuild)->Arg(8)->Arg(16)->Arg(32);

void BM_JtSizeOracle(benchmark::State& state) {
  const int d = 16;
  Domain domain = Domain::WithSizes(std::vector<int>(d, 12));
  std::vector<AttrSet> cliques;
  for (int i = 0; i + 1 < d; ++i) cliques.push_back(AttrSet({i, i + 1}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(JtSizeMb(domain, cliques));
  }
}
BENCHMARK(BM_JtSizeOracle);

void BM_BeliefPropagation(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  Domain domain = Domain::WithSizes(std::vector<int>(d, 6));
  std::vector<AttrSet> cliques;
  for (int i = 0; i + 1 < d; ++i) cliques.push_back(AttrSet({i, i + 1}));
  MarkovRandomField model(domain, cliques);
  Rng rng(4);
  for (int c = 0; c < model.num_cliques(); ++c) {
    Factor p = model.potential(c);
    for (double& v : p.mutable_values()) v = rng.Gaussian();
    model.SetPotential(c, std::move(p));
  }
  for (auto _ : state) {
    model.Calibrate();
    benchmark::DoNotOptimize(model.LogPartition());
  }
}
BENCHMARK(BM_BeliefPropagation)->Arg(8)->Arg(16);

void BM_ComputeMarginal(benchmark::State& state) {
  Rng rng(5);
  Domain domain = Domain::WithSizes({8, 8, 8, 8, 8, 8});
  Dataset data = SampleRandomBayesNet(domain, state.range(0), 2, 0.4, rng);
  AttrSet r({0, 2, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMarginal(data, r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeMarginal)->Arg(10000)->Arg(100000);

void BM_MirrorDescentEstimation(benchmark::State& state) {
  Rng rng(6);
  Domain domain = Domain::WithSizes({4, 4, 4, 4, 4});
  Dataset data = SampleRandomBayesNet(domain, 5000, 2, 0.4, rng);
  std::vector<Measurement> ms;
  for (const AttrSet& r :
       {AttrSet({0, 1}), AttrSet({1, 2}), AttrSet({2, 3}), AttrSet({3, 4})}) {
    ms.push_back({r, ComputeMarginal(data, r), 10.0});
  }
  EstimationOptions options;
  options.max_iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateMrf(domain, ms, 5000.0, options));
  }
}
BENCHMARK(BM_MirrorDescentEstimation)->Arg(10)->Arg(50);

void BM_SyntheticGeneration(benchmark::State& state) {
  Rng rng(7);
  Domain domain = Domain::WithSizes({4, 4, 4, 4, 4, 4});
  std::vector<AttrSet> cliques;
  for (int i = 0; i + 1 < 6; ++i) cliques.push_back(AttrSet({i, i + 1}));
  MarkovRandomField model(domain, cliques);
  for (int c = 0; c < model.num_cliques(); ++c) {
    Factor p = model.potential(c);
    for (double& v : p.mutable_values()) v = rng.Gaussian();
    model.SetPotential(c, std::move(p));
  }
  model.set_total(static_cast<double>(state.range(0)));
  model.Calibrate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenerateSyntheticData(model, state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SyntheticGeneration)->Arg(10000)->Arg(50000);

// ParallelFor scaling over the factor product-sum kernel (Multiply is the
// broadcast product over the union domain — the belief-propagation inner
// op — and Sum the reduction). Arg = thread count; compare 1/2/4/8 for the
// wall-clock scaling curve.
void BM_ParallelFactorProductSum(benchmark::State& state) {
  SetParallelThreads(static_cast<int>(state.range(0)));
  const int n = 128;  // 128^3 = 2M cells, well past the parallel threshold
  Factor a = RandomFactor({0, 1}, {n, n}, 11);
  Factor b = RandomFactor({1, 2}, {n, n}, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(b).Sum());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
  SetParallelThreads(0);
}
BENCHMARK(BM_ParallelFactorProductSum)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// ParallelFor scaling on the AIM candidate-scoring shape: many independent
// medium-sized tasks (marginal counting), the Line-14 hot path.
void BM_ParallelMarginalScoring(benchmark::State& state) {
  SetParallelThreads(static_cast<int>(state.range(0)));
  Rng rng(13);
  Domain domain = Domain::WithSizes({8, 8, 8, 8, 8, 8, 8, 8});
  Dataset data = SampleRandomBayesNet(domain, 50000, 2, 0.4, rng);
  std::vector<AttrSet> candidates;
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) candidates.push_back(AttrSet({i, j}));
  }
  for (auto _ : state) {
    std::vector<double> mass = ParallelMap(
        static_cast<int64_t>(candidates.size()), [&](int64_t c) {
          std::vector<double> m = ComputeMarginal(data, candidates[c]);
          double s = 0.0;
          for (double v : m) s += v;
          return s;
        });
    benchmark::DoNotOptimize(mass);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(candidates.size()));
  SetParallelThreads(0);
}
BENCHMARK(BM_ParallelMarginalScoring)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Observability overhead on the instrumented estimation hot path. Arg(0):
// 0 = obs fully disabled (the default production state; the acceptance
// target is <2% overhead vs. pre-instrumentation code, i.e. the gates must
// be invisible here), 1 = metrics on, 2 = metrics + tracing into a
// discarding sink. Compare the /0 and /1,/2 timings to price the subsystem.
void BM_ObsEstimationOverhead(benchmark::State& state) {
  struct NullSink : TraceSink {
    void Emit(const TraceEvent&) override {}
  };
  static NullSink null_sink;
  const int mode = static_cast<int>(state.range(0));
  SetMetricsEnabled(mode >= 1);
  ScopedTraceSink scoped(mode >= 2 ? &null_sink : nullptr);
  Rng rng(6);
  Domain domain = Domain::WithSizes({4, 4, 4, 4, 4});
  Dataset data = SampleRandomBayesNet(domain, 5000, 2, 0.4, rng);
  std::vector<Measurement> ms;
  for (const AttrSet& r :
       {AttrSet({0, 1}), AttrSet({1, 2}), AttrSet({2, 3}), AttrSet({3, 4})}) {
    ms.push_back({r, ComputeMarginal(data, r), 10.0});
  }
  EstimationOptions options;
  options.max_iters = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateMrf(domain, ms, 5000.0, options));
  }
  SetMetricsEnabled(false);
}
BENCHMARK(BM_ObsEstimationOverhead)->Arg(0)->Arg(1)->Arg(2);

// Raw cost of one dormant instrumentation site: the TraceEnabled() +
// MetricsEnabled() relaxed loads that every gated site pays when obs is off.
void BM_ObsDisabledGate(benchmark::State& state) {
  SetMetricsEnabled(false);
  for (auto _ : state) {
    bool on = TraceEnabled() || MetricsEnabled();
    benchmark::DoNotOptimize(on);
  }
}
BENCHMARK(BM_ObsDisabledGate);

// Raw cost of one dormant fault-injection site: the FaultsArmed() relaxed
// load every disarmed ShouldInjectFault pays. The contract (robust/fault.h)
// prices this like the obs gates — compare against BM_ObsDisabledGate.
void BM_FaultDisabledGate(benchmark::State& state) {
  DisarmFaults();
  for (auto _ : state) {
    bool fire = ShouldInjectFault("estimation_step");
    benchmark::DoNotOptimize(fire);
  }
}
BENCHMARK(BM_FaultDisabledGate);

// Estimation hot path with the dormant "estimation_step" site in place;
// Arg(0) = disarmed (must be within 2% of pre-fault-injection timings),
// Arg(1) = armed with a never-firing rule on that very point, so every
// EstimateMrf call pays the full rule lookup — the worst realistic case.
void BM_FaultEstimationOverhead(benchmark::State& state) {
  if (state.range(0) == 1) {
    Status s = ArmFaults("estimation_step:p=0");
    if (!s.ok()) state.SkipWithError("ArmFaults failed");
  } else {
    DisarmFaults();
  }
  Rng rng(6);
  Domain domain = Domain::WithSizes({4, 4, 4, 4, 4});
  Dataset data = SampleRandomBayesNet(domain, 5000, 2, 0.4, rng);
  std::vector<Measurement> ms;
  for (const AttrSet& r :
       {AttrSet({0, 1}), AttrSet({1, 2}), AttrSet({2, 3}), AttrSet({3, 4})}) {
    ms.push_back({r, ComputeMarginal(data, r), 10.0});
  }
  EstimationOptions options;
  options.max_iters = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateMrf(domain, ms, 5000.0, options));
  }
  DisarmFaults();
}
BENCHMARK(BM_FaultEstimationOverhead)->Arg(0)->Arg(1);

// Cost of one live counter increment and one live histogram observation
// (lock-free atomics), for sizing how much instrumentation a hot loop can
// carry when metrics are enabled.
void BM_ObsLiveCounter(benchmark::State& state) {
  SetMetricsEnabled(true);
  static Counter& counter =
      MetricsRegistry::Global().counter("bench.obs.counter");
  static Histogram& hist =
      MetricsRegistry::Global().histogram("bench.obs.hist");
  double x = 1.0;
  for (auto _ : state) {
    counter.Add(1);
    hist.Observe(x);
    x += 0.5;
  }
  SetMetricsEnabled(false);
}
BENCHMARK(BM_ObsLiveCounter);

}  // namespace
}  // namespace aim

BENCHMARK_MAIN();
