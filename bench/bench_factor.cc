// Microbenchmarks for the flat factor kernels (DESIGN.md "Factor kernels").
//
// Every benchmark runs with Arg(0) = seed odometer kernels, Arg(1) = flat
// loop-collapse kernels pinned to the scalar SIMD level, and Arg(2) = flat
// kernels at the detected SIMD level, so both the planner's win and the
// vectorization win are priced within one run (machine speed cancels out).
// Checked-in baselines live in BENCH_factor.json; the CI "Factor perf
// smoke" step re-runs these, fails on a >2x real-time regression, and
// requires the flat kernels to keep a >=1.5x win on same-shape multiply
// and subset marginalization, and the SIMD level to keep a >=2x win on
// logsumexp and exp (scripts/check_bench_regression.py --speedup).
//
// Shapes stay below the parallel-dispatch threshold (1 << 15 cells) so the
// benches measure the kernels themselves, single-threaded, not the pool.

#include <benchmark/benchmark.h>

#include <vector>

#include "factor/factor.h"
#include "factor/kernels.h"
#include "factor/simd_dispatch.h"
#include "marginal/attr_set.h"
#include "parallel/thread_pool.h"
#include "util/rng.h"

namespace aim {
namespace {

Factor RandomFactor(std::vector<int> attrs, std::vector<int> sizes,
                    uint64_t seed) {
  Factor f(std::move(attrs), std::move(sizes));
  Rng rng(seed);
  for (double& v : f.mutable_values()) v = rng.Uniform(-2.0, 2.0);
  return f;
}

// Applies the Arg(0)/Arg(1)/Arg(2) kernel selection for the benchmark body
// and restores the defaults (flat on, detected SIMD level) afterwards.
struct KernelMode {
  explicit KernelMode(benchmark::State& state) {
    SetParallelThreads(1);
    SetFlatKernelsEnabled(state.range(0) >= 1);
    SetSimdLevel(state.range(0) >= 2 ? DetectedSimdLevel()
                                     : SimdLevel::kScalar);
  }
  ~KernelMode() {
    SetSimdLevel(DefaultSimdLevel());
    SetFlatKernelsEnabled(true);
    SetParallelThreads(0);
  }
};

// Two identically-shaped 13824-cell factors: the planner fuses everything
// into one contiguous run.
void BM_MultiplySameShape(benchmark::State& state) {
  KernelMode mode(state);
  Factor a = RandomFactor({0, 1, 2}, {24, 24, 24}, 1);
  Factor b = RandomFactor({0, 1, 2}, {24, 24, 24}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(b));
  }
  state.SetItemsProcessed(state.iterations() * a.num_cells());
}
BENCHMARK(BM_MultiplySameShape)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// Broadcast over a missing leading axis: b's stride is 0 on axis 0, unit
// on the fused trailing pair.
void BM_MultiplyBroadcast(benchmark::State& state) {
  KernelMode mode(state);
  Factor a = RandomFactor({0, 1, 2}, {24, 24, 24}, 3);
  Factor b = RandomFactor({1, 2}, {24, 24}, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(b));
  }
  state.SetItemsProcessed(state.iterations() * a.num_cells());
}
BENCHMARK(BM_MultiplyBroadcast)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// The Calibrate hot path: accumulate a separator-shaped message into a
// clique table (broadcast over the leading axis).
void BM_AddInPlaceSubset(benchmark::State& state) {
  KernelMode mode(state);
  Factor acc = RandomFactor({0, 1, 2}, {24, 24, 24}, 5);
  Factor msg = RandomFactor({1, 2}, {24, 24}, 6);
  double scale = 1.0;
  for (auto _ : state) {
    acc.AddInPlace(msg, scale);
    scale = -scale;  // keep the accumulator bounded
    benchmark::DoNotOptimize(acc.mutable_values().data());
  }
  state.SetItemsProcessed(state.iterations() * acc.num_cells());
}
BENCHMARK(BM_AddInPlaceSubset)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// Trailing axes contracted: each destination cell is a contiguous
// 576-element reduction (the scalar-accumulator fast path).
void BM_MarginalizeTrailing(benchmark::State& state) {
  KernelMode mode(state);
  Factor f = RandomFactor({0, 1, 2}, {24, 24, 24}, 7);
  const AttrSet target({0});
  Factor out;
  for (auto _ : state) {
    f.SumToInto(target, &out);
    benchmark::DoNotOptimize(out.mutable_values().data());
  }
  state.SetItemsProcessed(state.iterations() * f.num_cells());
}
BENCHMARK(BM_MarginalizeTrailing)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// Leading axes contracted: the destination axis is the unit-stride inner
// run, so the scatter-add is contiguous on both operands.
void BM_MarginalizeLeading(benchmark::State& state) {
  KernelMode mode(state);
  Factor f = RandomFactor({0, 1, 2}, {24, 24, 24}, 8);
  const AttrSet target({2});
  Factor out;
  for (auto _ : state) {
    f.SumToInto(target, &out);
    benchmark::DoNotOptimize(out.mutable_values().data());
  }
  state.SetItemsProcessed(state.iterations() * f.num_cells());
}
BENCHMARK(BM_MarginalizeLeading)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// Log-space marginalization (the message-passing kernel): max pass plus
// exp-accumulate pass per destination cell.
void BM_LogSumExpTrailing(benchmark::State& state) {
  KernelMode mode(state);
  Factor f = RandomFactor({0, 1, 2}, {24, 24, 24}, 9);
  const AttrSet target({0});
  Factor out;
  for (auto _ : state) {
    f.LogSumExpToInto(target, &out);
    benchmark::DoNotOptimize(out.mutable_values().data());
  }
  state.SetItemsProcessed(state.iterations() * f.num_cells());
}
BENCHMARK(BM_LogSumExpTrailing)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// Elementwise shifted exponential (the Calibrate belief -> probability
// step). Arg(0) and Arg(1) both run scalar std::exp (Exp has no odometer
// variant), so the interesting ratio is Arg(1) vs Arg(2): libm vs the
// vectorized exp.
void BM_Exp(benchmark::State& state) {
  KernelMode mode(state);
  Factor f = RandomFactor({0, 1, 2}, {24, 24, 24}, 10);
  const double shift = f.Max();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.Exp(shift));
  }
  state.SetItemsProcessed(state.iterations() * f.num_cells());
}
BENCHMARK(BM_Exp)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// Elementwise log (probability -> log-space potentials). Same story as
// BM_Exp: Arg(1) vs Arg(2) prices the vectorized log against libm.
void BM_Log(benchmark::State& state) {
  KernelMode mode(state);
  Factor f = RandomFactor({0, 1, 2}, {24, 24, 24}, 11);
  for (double& v : f.mutable_values()) v = v + 2.5;  // keep inputs positive
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.Log());
  }
  state.SetItemsProcessed(state.iterations() * f.num_cells());
}
BENCHMARK(BM_Log)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aim

BENCHMARK_MAIN();
