// Shared driver for the Figure 1/2/3 reproductions: every mechanism × every
// dataset × the epsilon grid, printing mean/min/max workload error per
// configuration (the series the paper plots).

#ifndef AIM_BENCH_FIG_WORKLOAD_H_
#define AIM_BENCH_FIG_WORKLOAD_H_

#include <string>

#include "bench_common.h"

namespace aim {
namespace bench {

// `default_datasets` (may be empty = all six) applies when --datasets is
// not passed; Figures 2/3 default to a representative subset so the full
// default sweep fits a single-core budget (--datasets=... restores any set).
int RunWorkloadFigure(int argc, char** argv, const std::string& figure_name,
                      Workload (*make_workload)(const SimulatedData&),
                      const std::vector<std::string>& default_datasets = {});

}  // namespace bench
}  // namespace aim

#endif  // AIM_BENCH_FIG_WORKLOAD_H_
