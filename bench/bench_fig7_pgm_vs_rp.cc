// Figure 7 / Appendix F: MWEM+PGM vs MWEM+RelaxedProjection on ALL-3WAY.
// Both mechanisms are identical except for the generate step; the round
// count T is swept and the best (minimum mean error over T) is reported per
// mechanism, as in the paper. MWEM+PGM should win consistently.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "eval/experiment.h"
#include "mechanisms/mwem_pgm.h"
#include "mechanisms/mwem_rp.h"

int main(int argc, char** argv) {
  using namespace aim;
  bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  if (flags.datasets.empty() && !flags.full) {
    flags.datasets = {"adult", "fire", "titanic"};
  }
  std::vector<double> epsilons = bench::EpsilonGrid(flags);
  // Paper sweeps T = 5, 10, ..., 100; scaled default uses a short sweep.
  std::vector<int> rounds_sweep =
      flags.full ? std::vector<int>{5, 10, 20, 40, 60, 80, 100}
                 : std::vector<int>{4, 8};

  std::cout << "# Figure 7 — MWEM+PGM vs MWEM+RP, best-over-T error\n";
  TablePrinter table({"dataset", "epsilon", "mwem_pgm", "mwem_rp",
                      "rp_over_pgm"});
  for (const SimulatedData& sim : bench::LoadDatasets(flags)) {
    Workload workload = bench::MakeAll3Way(sim);
    for (double eps : epsilons) {
      double best_pgm = 1e300, best_rp = 1e300;
      for (int rounds : rounds_sweep) {
        MwemPgmOptions pgm_options;
        pgm_options.rounds = rounds;
        pgm_options.round_estimation.max_iters = flags.round_iters;
        pgm_options.final_estimation.max_iters = flags.final_iters;
        pgm_options.max_size_mb = flags.max_size_mb * 4;
        MwemPgmMechanism pgm(pgm_options);
        best_pgm = std::min(
            best_pgm, RunTrials(pgm, sim.data, workload, eps, kPaperDelta,
                                flags.trials, flags.seed + 1)
                          .mean);

        MwemRpOptions rp_options;
        rp_options.rounds = rounds;
        rp_options.projection.rows = flags.rp_rows;
        rp_options.projection.iters = flags.rp_iters;
        MwemRpMechanism rp(rp_options);
        best_rp = std::min(
            best_rp, RunTrials(rp, sim.data, workload, eps, kPaperDelta,
                               flags.trials, flags.seed + 1)
                         .mean);
      }
      table.AddRow({sim.name, FormatG(eps), FormatG(best_pgm),
                    FormatG(best_rp), FormatG(best_rp / best_pgm, 3)});
      std::cerr << "[fig7] " << sim.name << " eps=" << eps
                << " pgm=" << best_pgm << " rp=" << best_rp << "\n";
    }
  }
  table.Print(std::cout, flags.csv);
  return 0;
}
