// Shared plumbing for the table/figure reproduction binaries: flag parsing,
// dataset/workload construction, and the scaled-down default configuration
// (see DESIGN.md §3: benches default to reduced record counts, a reduced
// epsilon grid, and a smaller model-capacity cap so the full suite runs on
// one CPU core; pass --full to approach the paper's settings).

#ifndef AIM_BENCH_BENCH_COMMON_H_
#define AIM_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "data/simulators.h"
#include "marginal/workload.h"
#include "mechanisms/registry.h"

namespace aim {
namespace bench {

struct BenchFlags {
  // Dataset scale relative to Table 2 record counts.
  double record_scale = 0.02;
  int trials = 1;
  bool csv = false;
  uint64_t seed = 0;
  // Epsilon grid; empty = per-bench default (SmallEpsilonGrid unless
  // --full, then PaperEpsilonGrid).
  std::vector<double> epsilons;
  // Mechanism subset; empty = per-bench default roster.
  std::vector<std::string> mechanisms;
  // Dataset subset (lowercase paper names); empty = all six.
  std::vector<std::string> datasets;
  // Model capacity for PGM mechanisms (paper: 80 MB; scaled default 4 MB
  // so the capacity constraint is active at bench data sizes).
  double max_size_mb = 4.0;
  // Paper-fidelity mode: full epsilon grid, 5 trials, larger scale/capacity.
  bool full = false;
  // Fixed rounds for MWEM+PGM / MWEM+RP / GEM (0 = their 2d default);
  // capped by default so the slowest datasets stay tractable on one core.
  int mwem_rounds = 12;
  // Estimation / projection effort (see RegistryOptions).
  int round_iters = 30;
  int final_iters = 200;
  int rp_rows = 32;
  int rp_iters = 20;
  int64_t rp_max_cells = 20000;
  // Worker threads for the parallel runtime (0 = automatic: AIM_THREADS
  // env var, else hardware concurrency). ParseFlags applies this to the
  // global pool, so trials, candidate scoring, and inference all use it.
  int threads = 0;
  // Observability: --trace-out installs a process-lifetime JSONL trace sink
  // ("-"/"stderr" = stderr); --metrics-out enables metrics and dumps the
  // registry as JSON at process exit ("-" = stdout). ParseFlags wires both,
  // so individual bench binaries need no changes.
  std::string trace_out;
  std::string metrics_out;
  // Fault tolerance (AIM only): --checkpoint-out / --checkpoint-every /
  // --resume / --deadline-s pass through RegistryOptions into AimOptions.
  std::string checkpoint_out;
  int checkpoint_every = 1;
  std::string resume;
  double deadline_s = 0.0;
};

// Parses --flag=value style arguments; prints usage and exits on --help or
// malformed input. Recognized flags: --scale, --trials, --csv, --seed,
// --eps (comma list), --mechanisms (comma list), --datasets (comma list),
// --max_size_mb, --full, --round_iters, --final_iters, --rp_rows,
// --rp_iters, --threads.
BenchFlags ParseFlags(int argc, char** argv);

// Registry options derived from the flags.
RegistryOptions ToRegistryOptions(const BenchFlags& flags);

// The effective epsilon grid for this run.
std::vector<double> EpsilonGrid(const BenchFlags& flags);

// The datasets selected by the flags (all six by default), simulated at
// the flag scale.
std::vector<SimulatedData> LoadDatasets(const BenchFlags& flags);

// The three paper workloads for a dataset (Section 6.1).
Workload MakeAll3Way(const SimulatedData& sim);
Workload MakeTarget(const SimulatedData& sim);
Workload MakeSkewed(const SimulatedData& sim);

// Mechanism roster for the comparison figures (flags.mechanisms or the
// standard nine).
std::vector<std::string> MechanismRoster(const BenchFlags& flags);

}  // namespace bench
}  // namespace aim

#endif  // AIM_BENCH_BENCH_COMMON_H_
