// Figure 3: workload error of all mechanisms on the SKEWED workload
// (256 attribute triples sampled with squared-exponential attribute
// weights under a fixed seed).

#include "fig_workload.h"

int main(int argc, char** argv) {
  return aim::bench::RunWorkloadFigure(argc, argv, "Figure 3 (SKEWED)",
                                       &aim::bench::MakeSkewed,
                                       {"adult", "fire", "titanic"});
}
