// Table 2: summary of the (simulated) evaluation datasets — records,
// dimensionality, min/max attribute domains, and log10 total domain size.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  aim::bench::BenchFlags flags = aim::bench::ParseFlags(argc, argv);
  std::cout << "# Table 2 — simulated dataset summary (records at scale="
            << flags.record_scale << "; paper record counts in parens)\n";
  aim::TablePrinter table({"dataset", "records", "paper_records",
                           "dimensions", "min_domain", "max_domain",
                           "log10_total_domain"});
  auto paper_records = [](const std::string& name) -> int64_t {
    if (name == "adult") return 48842;
    if (name == "salary") return 135727;
    if (name == "msnbc") return 989818;
    if (name == "fire") return 305119;
    if (name == "nltcs") return 21574;
    return 1304;  // titanic
  };
  for (const aim::SimulatedData& sim : aim::bench::LoadDatasets(flags)) {
    const aim::Domain& domain = sim.data.domain();
    int min_size = domain.size(0), max_size = domain.size(0);
    for (int a = 0; a < domain.num_attributes(); ++a) {
      min_size = std::min(min_size, domain.size(a));
      max_size = std::max(max_size, domain.size(a));
    }
    table.AddRow({sim.name, std::to_string(sim.data.num_records()),
                  std::to_string(paper_records(sim.name)),
                  std::to_string(domain.num_attributes()),
                  std::to_string(min_size), std::to_string(max_size),
                  aim::FormatG(domain.Log10TotalSize(), 3)});
  }
  table.Print(std::cout, flags.csv);
  return 0;
}
