// Figure 4(c): true per-marginal error of AIM vs. the Section-5 confidence
// bounds, on fire with ALL-3WAY at epsilon=10 (lambda=1.7, lambda1=2.7,
// lambda2=3.7 for 95% one-sided coverage). Prints one row per marginal in
// the downward closure plus a summary: coverage rate and the median
// bound-to-error ratio for supported vs unsupported marginals.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "dp/accountant.h"
#include "eval/experiment.h"
#include "marginal/marginal.h"
#include "mechanisms/aim.h"
#include "uncertainty/bounds.h"
#include "util/math.h"

int main(int argc, char** argv) {
  using namespace aim;
  bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  if (flags.datasets.empty()) flags.datasets = {"fire"};
  double eps = flags.epsilons.empty() ? 10.0 : flags.epsilons[0];

  std::cout << "# Figure 4(c) — true error vs 95% error bound (eps=" << eps
            << ")\n";
  TablePrinter table(
      {"dataset", "marginal", "cells", "supported", "true_error", "bound"});
  TablePrinter summary({"dataset", "marginals", "coverage", "median_ratio_supported",
                        "median_ratio_unsupported"});
  for (const SimulatedData& sim : bench::LoadDatasets(flags)) {
    Workload workload = bench::MakeAll3Way(sim);
    AimOptions options;
    options.max_size_mb = flags.max_size_mb;
    options.round_estimation.max_iters = flags.round_iters;
    options.final_estimation.max_iters = flags.final_iters;
    AimMechanism mechanism(options);
    Rng rng(flags.seed + 17);
    MechanismResult result =
        mechanism.Run(sim.data, workload, CdpRho(eps, kPaperDelta), rng);

    UncertaintyQuantifier uq(sim.data.domain(), result);
    int covered = 0, total = 0;
    std::vector<double> ratio_supported, ratio_unsupported;
    for (const AttrSet& r : DownwardClosure(workload)) {
      auto bound = uq.BoundFor(r, result.synthetic);
      if (!bound.has_value()) continue;
      double true_error =
          L1Distance(ComputeMarginal(sim.data, r),
                     ComputeMarginal(result.synthetic, r)) /
          static_cast<double>(sim.data.num_records());
      double bound_value =
          bound->bound / static_cast<double>(sim.data.num_records());
      ++total;
      if (true_error <= bound_value) ++covered;
      if (true_error > 0.0) {
        (bound->supported ? ratio_supported : ratio_unsupported)
            .push_back(bound_value / true_error);
      }
      table.AddRow({sim.name, r.ToString(),
                    std::to_string(MarginalSize(sim.data.domain(), r)),
                    bound->supported ? "yes" : "no", FormatG(true_error),
                    FormatG(bound_value)});
    }
    auto median = [](std::vector<double> v) {
      if (v.empty()) return 0.0;
      std::sort(v.begin(), v.end());
      return v[v.size() / 2];
    };
    summary.AddRow({sim.name, std::to_string(total),
                    FormatG(static_cast<double>(covered) / total, 3),
                    FormatG(median(ratio_supported), 3),
                    FormatG(median(ratio_unsupported), 3)});
  }
  table.Print(std::cout, flags.csv);
  std::cout << "\n# Summary (paper: coverage 1.0, median ratios 4.4 "
               "supported / 8.3 unsupported)\n";
  summary.Print(std::cout, flags.csv);
  return 0;
}
