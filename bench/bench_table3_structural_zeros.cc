// Table 3: AIM with and without Appendix-D structural-zero constraints on
// the fire dataset (the simulator embeds nine constrained attribute pairs),
// over the epsilon grid; reports the error ratio (paper: ratios mostly > 1,
// i.e., constraints help on average).

#include <iostream>

#include "bench_common.h"
#include "eval/experiment.h"
#include "marginal/marginal.h"
#include "mechanisms/aim.h"
#include "pgm/estimation.h"

int main(int argc, char** argv) {
  using namespace aim;
  bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  if (flags.datasets.empty()) flags.datasets = {"fire"};
  std::vector<double> epsilons = bench::EpsilonGrid(flags);

  std::cout << "# Table 3 — AIM vs AIM+structural zeros (fire, ALL-3WAY)\n";
  TablePrinter table({"epsilon", "aim", "aim_zeros", "ratio"});
  for (const SimulatedData& sim : bench::LoadDatasets(flags)) {
    Workload workload = bench::MakeAll3Way(sim);
    // Convert the simulator's zero tuples into estimator constraints.
    std::vector<ZeroConstraint> zeros;
    for (const StructuralZeroConstraint& c : sim.structural_zeros) {
      ZeroConstraint z;
      z.attrs = AttrSet(c.attributes);
      MarginalIndexer indexer(sim.data.domain(), z.attrs);
      for (const auto& tuple : c.zero_tuples) {
        z.zero_cells.push_back(indexer.IndexOfTuple(tuple));
      }
      zeros.push_back(std::move(z));
    }
    if (zeros.empty()) {
      std::cerr << sim.name << " has no structural zeros; skipping\n";
      continue;
    }
    for (double eps : epsilons) {
      AimOptions plain;
      plain.max_size_mb = flags.max_size_mb;
      plain.round_estimation.max_iters = flags.round_iters;
      plain.final_estimation.max_iters = flags.final_iters;
      plain.record_candidates = false;
      AimOptions constrained = plain;
      constrained.structural_zeros = zeros;

      TrialStats base = RunTrials(AimMechanism(plain), sim.data, workload,
                                  eps, kPaperDelta, flags.trials,
                                  flags.seed + 1);
      TrialStats with_zeros =
          RunTrials(AimMechanism(constrained), sim.data, workload, eps,
                    kPaperDelta, flags.trials, flags.seed + 1);
      table.AddRow({FormatG(eps), FormatG(base.mean),
                    FormatG(with_zeros.mean),
                    FormatG(base.mean / with_zeros.mean, 3)});
      std::cerr << "[table3] eps=" << eps << " aim=" << base.mean
                << " aim+zeros=" << with_zeros.mean << "\n";
    }
  }
  table.Print(std::cout, flags.csv);
  return 0;
}
