// Table 1: the taxonomy of select-measure-generate mechanisms, printed from
// each implementation's declared traits.

#include <iostream>

#include "bench_common.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  aim::bench::BenchFlags flags = aim::bench::ParseFlags(argc, argv);
  std::cout << "# Table 1 — taxonomy of select-measure-generate mechanisms\n";
  aim::TablePrinter table({"mechanism", "workload_aware", "data_aware",
                           "budget_aware", "efficiency_aware"});
  auto mark = [](bool b) { return std::string(b ? "yes" : "-"); };
  for (const auto& mechanism :
       aim::StandardMechanisms(aim::bench::ToRegistryOptions(flags))) {
    aim::MechanismTraits t = mechanism->traits();
    table.AddRow({mechanism->name(), mark(t.workload_aware),
                  mark(t.data_aware), mark(t.budget_aware),
                  mark(t.efficiency_aware)});
  }
  table.Print(std::cout, flags.csv);
  return 0;
}
