// Microbenchmarks for the out-of-core columnar store: mmap open vs CSV
// parse, and streamed vs materialized marginal counting. CI gates the
// headline claim (mmap load >= 5x faster than CSV parse) via
// scripts/check_bench_regression.py against BENCH_store.json.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "data/csv.h"
#include "data/data_source.h"
#include "data/dataset.h"
#include "data/preprocess.h"
#include "marginal/marginal.h"
#include "store/reader.h"
#include "store/writer.h"
#include "util/logging.h"

namespace aim {
namespace {

constexpr int64_t kRows = 200000;

std::string BenchDir() {
  const char* tmp = std::getenv("TMPDIR");
  return tmp != nullptr && *tmp != '\0' ? tmp : "/tmp";
}

// A deterministic six-attribute dataset with all three encoding widths.
const Dataset& BenchDataset() {
  static const Dataset* data = [] {
    const Domain domain = Domain::WithSizes({5, 17, 250, 800, 4000, 70000});
    std::vector<std::vector<int32_t>> columns(domain.num_attributes());
    for (int a = 0; a < domain.num_attributes(); ++a) {
      columns[a].reserve(kRows);
      const int64_t size = domain.size(a);
      for (int64_t i = 0; i < kRows; ++i) {
        columns[a].push_back(static_cast<int32_t>((i * (2 * a + 3)) % size));
      }
    }
    return new Dataset(
        Dataset::FromColumns(domain, std::move(columns)));
  }();
  return *data;
}

// Writes the CSV and store once per process; returns the path.
const std::string& CsvPath() {
  static const std::string* path = [] {
    auto* p = new std::string(BenchDir() + "/bench_store_data.csv");
    AIM_CHECK(WriteCsv(BenchDataset(), *p).ok());
    return p;
  }();
  return *path;
}

const std::string& StorePath() {
  static const std::string* path = [] {
    auto* p = new std::string(BenchDir() + "/bench_store_data.aim");
    AIM_CHECK(WriteStore(BenchDataset(), *p).ok());
    return p;
  }();
  return *path;
}

const std::string& ShardedStorePath() {
  static const std::string* path = [] {
    auto* p = new std::string(BenchDir() + "/bench_store_sharded.aim");
    StoreWriterOptions options;
    options.shard_rows = kRows / 4 + 1;
    AIM_CHECK(WriteStore(BenchDataset(), *p, options).ok());
    return p;
  }();
  return *path;
}

// CSV ingestion as aim_cli does it for --input=file.csv: parse + Appendix-A
// preprocessing into an in-memory dataset.
void BM_LoadCsv(benchmark::State& state) {
  const std::string& path = CsvPath();
  for (auto _ : state) {
    StatusOr<RawTable> table = ReadCsv(path);
    AIM_CHECK(table.ok());
    StatusOr<PreprocessResult> prep = Preprocess(*table, {});
    AIM_CHECK(prep.ok());
    benchmark::DoNotOptimize(prep->dataset.num_records());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_LoadCsv);

// Store ingestion as aim_cli does it for --data=file.aim: mmap + full
// verification pass (checksums and value ranges — still a single streaming
// scan of the raw bytes, no parsing or allocation per record).
void BM_LoadStore(benchmark::State& state) {
  const std::string& path = StorePath();
  for (auto _ : state) {
    StatusOr<std::unique_ptr<StoreSource>> source = StoreSource::Open(path);
    AIM_CHECK(source.ok());
    benchmark::DoNotOptimize((*source)->num_records());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_LoadStore);

// Unverified open: what re-attaching to an already-trusted store costs
// (pure mmap + header parse; data pages fault in lazily during counting).
void BM_LoadStoreNoVerify(benchmark::State& state) {
  const std::string& path = StorePath();
  StoreOpenOptions options;
  options.verify = false;
  for (auto _ : state) {
    StatusOr<std::unique_ptr<StoreSource>> source =
        StoreSource::Open(path, options);
    AIM_CHECK(source.ok());
    benchmark::DoNotOptimize((*source)->num_records());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_LoadStoreNoVerify);

void BM_CountMaterialized(benchmark::State& state) {
  const Dataset& data = BenchDataset();
  const AttrSet r({1, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMarginal(data, r));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_CountMaterialized);

// The same marginal streamed from the mmap'd store (width-minimal columns:
// 1- and 2-byte reads replace the in-memory 4-byte ones, and the source is
// never materialized).
void BM_CountStreamed(benchmark::State& state) {
  StatusOr<std::unique_ptr<StoreSource>> source =
      StoreSource::Open(StorePath());
  AIM_CHECK(source.ok());
  const AttrSet r({1, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMarginal(**source, r));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_CountStreamed);

void BM_CountStreamedSharded(benchmark::State& state) {
  StatusOr<std::unique_ptr<StoreSource>> source =
      StoreSource::Open(ShardedStorePath());
  AIM_CHECK(source.ok());
  const AttrSet r({1, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMarginal(**source, r));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_CountStreamedSharded);

// Streaming with page-release: the bounded-RSS configuration a
// bigger-than-RAM pass would use. Prices the madvise calls.
void BM_CountStreamedReleasePages(benchmark::State& state) {
  StatusOr<std::unique_ptr<StoreSource>> source =
      StoreSource::Open(StorePath());
  AIM_CHECK(source.ok());
  const AttrSet r({1, 2});
  MarginalCountOptions options;
  options.chunk_rows = 16384;
  options.release_pages = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMarginal(**source, r, 1.0, options));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_CountStreamedReleasePages);

}  // namespace
}  // namespace aim

BENCHMARK_MAIN();
