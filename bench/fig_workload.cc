#include "fig_workload.h"

#include <iostream>

#include "eval/experiment.h"

namespace aim {
namespace bench {

int RunWorkloadFigure(int argc, char** argv, const std::string& figure_name,
                      Workload (*make_workload)(const SimulatedData&),
                      const std::vector<std::string>& default_datasets) {
  BenchFlags flags = ParseFlags(argc, argv);
  if (flags.datasets.empty() && !flags.full) {
    flags.datasets = default_datasets;
  }
  RegistryOptions registry = ToRegistryOptions(flags);
  std::vector<double> epsilons = EpsilonGrid(flags);
  std::vector<std::string> roster = MechanismRoster(flags);

  std::cout << "# " << figure_name
            << " — workload error (Definition 2), mean over "
            << flags.trials << " trial(s), delta=" << kPaperDelta << "\n";
  TablePrinter table({"dataset", "epsilon", "mechanism", "error_mean",
                      "error_min", "error_max", "seconds"});
  for (const SimulatedData& sim : LoadDatasets(flags)) {
    Workload workload = make_workload(sim);
    for (double eps : epsilons) {
      for (const std::string& name : roster) {
        auto mechanism = MechanismByName(name, registry);
        if (mechanism == nullptr) {
          std::cerr << "unknown mechanism: " << name << "\n";
          return 2;
        }
        TrialStats stats =
            RunTrials(*mechanism, sim.data, workload, eps, kPaperDelta,
                      flags.trials, flags.seed + 1);
        table.AddRow({sim.name, FormatG(eps), name, FormatG(stats.mean),
                      FormatG(stats.min), FormatG(stats.max),
                      FormatG(stats.mean_seconds, 3)});
        std::cerr << "[" << figure_name << "] " << sim.name << " eps=" << eps
                  << " " << name << " error=" << stats.mean << "\n";
      }
    }
  }
  table.Print(std::cout, flags.csv);
  return 0;
}

}  // namespace bench
}  // namespace aim
