// Figure 6: AIM's runtime as a function of epsilon on the ALL-3WAY
// workload. Runtime should increase sharply with epsilon: a larger budget
// unlocks more rounds and larger marginals (Appendix E).

#include <iostream>

#include "bench_common.h"
#include "dp/accountant.h"
#include "eval/error.h"
#include "eval/experiment.h"
#include "mechanisms/aim.h"

int main(int argc, char** argv) {
  using namespace aim;
  bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  std::vector<double> epsilons = bench::EpsilonGrid(flags);

  std::cout << "# Figure 6 — AIM runtime vs epsilon (ALL-3WAY)\n";
  TablePrinter table({"dataset", "epsilon", "seconds", "rounds", "error"});
  for (const SimulatedData& sim : bench::LoadDatasets(flags)) {
    Workload workload = bench::MakeAll3Way(sim);
    for (double eps : epsilons) {
      AimOptions options;
      options.max_size_mb = flags.max_size_mb;
      options.round_estimation.max_iters = flags.round_iters;
      options.final_estimation.max_iters = flags.final_iters;
      options.record_candidates = false;
      AimMechanism mechanism(options);
      Rng rng(flags.seed + 1);
      MechanismResult result = mechanism.Run(
          sim.data, workload, CdpRho(eps, kPaperDelta), rng);
      double error = WorkloadError(sim.data, result.synthetic, workload);
      table.AddRow({sim.name, FormatG(eps), FormatG(result.seconds, 3),
                    std::to_string(result.rounds), FormatG(error)});
      std::cerr << "[fig6] " << sim.name << " eps=" << eps
                << " seconds=" << result.seconds << "\n";
    }
  }
  table.Print(std::cout, flags.csv);
  return 0;
}
