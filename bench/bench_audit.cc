// Microbenchmarks for the empirical privacy-auditing harness: exact
// Clopper-Pearson interval evaluation (the per-audit estimator cost),
// canary-pair construction, attack-statistic extraction from a measurement
// log, and a small end-to-end paired audit of MST (the per-pair fan-out
// cost that dominates audit_cli wall-clock).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "audit/attack.h"
#include "audit/audit.h"
#include "audit/canary.h"
#include "audit/estimator.h"
#include "data/domain.h"
#include "dp/accountant.h"
#include "marginal/workload.h"
#include "mechanisms/mst.h"
#include "util/logging.h"

namespace aim {
namespace {

const Domain& BenchDomain() {
  static const Domain* domain = new Domain(Domain::WithSizes({4, 4, 4}));
  return *domain;
}

void BM_RegularizedIncompleteBeta(benchmark::State& state) {
  double x = 0.1;
  for (auto _ : state) {
    double acc = 0.0;
    for (int k = 1; k <= 64; ++k) {
      acc += RegularizedIncompleteBeta(x, static_cast<double>(k),
                                       static_cast<double>(65 - k));
    }
    benchmark::DoNotOptimize(acc);
    x = x < 0.8 ? x + 0.1 : 0.1;
  }
}
BENCHMARK(BM_RegularizedIncompleteBeta);

void BM_ClopperPearsonCi(benchmark::State& state) {
  const int64_t trials = state.range(0);
  for (auto _ : state) {
    for (int64_t k = 0; k <= trials; k += trials / 8) {
      BinomialCi ci = ClopperPearsonCi(k, trials, 0.95);
      benchmark::DoNotOptimize(ci);
    }
  }
}
BENCHMARK(BM_ClopperPearsonCi)->Arg(100)->Arg(10000);

void BM_MakeWorstCaseCanaryPair(benchmark::State& state) {
  const int64_t records = state.range(0);
  for (auto _ : state) {
    CanaryPair pair = MakeWorstCaseCanaryPair(BenchDomain(), records);
    benchmark::DoNotOptimize(pair);
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_MakeWorstCaseCanaryPair)->Arg(500)->Arg(50000);

// Statistic extraction against a realistic measurement log: run MST once,
// then time the extraction alone (this is what each audit pair pays twice
// on top of the mechanism run itself).
void BM_ExtractStatistic(benchmark::State& state) {
  const AttackStatistic stat = static_cast<AttackStatistic>(state.range(0));
  static const MechanismResult* result = [] {
    CanaryPair pair = MakeWorstCaseCanaryPair(BenchDomain(), 500);
    const Workload workload = AllKWayWorkload(BenchDomain(), 2);
    Rng rng(7);
    MstOptions options;
    options.estimation.max_iters = 100;
    MstMechanism mst(options);
    return new MechanismResult(
        mst.Run(pair.with_canary, workload, CdpRho(1.0, 1e-9), rng));
  }();
  static const std::vector<int>* canary = [] {
    return new std::vector<int>(
        MakeWorstCaseCanaryPair(BenchDomain(), 500).canary);
  }();
  for (auto _ : state) {
    double value = ExtractStatistic(stat, *result, BenchDomain(), *canary);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_ExtractStatistic)
    ->Arg(static_cast<int>(AttackStatistic::kMeasurementCanaryMass))
    ->Arg(static_cast<int>(AttackStatistic::kSyntheticCanaryLikelihood))
    ->Arg(static_cast<int>(AttackStatistic::kSelectionTrace));

// End-to-end paired audit of MST at a handful of pairs: measures the
// per-pair cost (two mechanism runs + two extractions + estimator) that
// audit_cli multiplies by --pairs.
void BM_RunAuditMst(benchmark::State& state) {
  MstOptions mst_options;
  mst_options.estimation.max_iters = 100;
  const MstMechanism mst(mst_options);
  const Workload workload = AllKWayWorkload(BenchDomain(), 2);
  AuditOptions options;
  options.epsilon = 1.0;
  options.delta = 1e-9;
  options.pairs = static_cast<int>(state.range(0));
  options.num_records = 200;
  options.seed = 11;
  for (auto _ : state) {
    StatusOr<AuditResult> audit =
        RunAudit(mst, BenchDomain(), workload, options);
    AIM_CHECK(audit.ok());
    benchmark::DoNotOptimize(*audit);
  }
  state.SetItemsProcessed(state.iterations() * options.pairs);
}
BENCHMARK(BM_RunAuditMst)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aim

BENCHMARK_MAIN();
