// Figure 2: workload error of all mechanisms on the TARGET workload
// (all 3-way marginals involving the dataset's target attribute).

#include "fig_workload.h"

int main(int argc, char** argv) {
  return aim::bench::RunWorkloadFigure(argc, argv, "Figure 2 (TARGET)",
                                       &aim::bench::MakeTarget,
                                       {"adult", "fire", "titanic"});
}
