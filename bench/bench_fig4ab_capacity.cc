// Figure 4(a,b): AIM's workload error and runtime as a function of the
// model-capacity limit (MAX-SIZE), on the fire dataset with the ALL-3WAY
// workload, for epsilon in {0.1, 1, 10}. Error should fall and runtime rise
// with capacity, leveling off at small epsilon where the constraint is
// inactive (Section 6.5).

#include <iostream>

#include "bench_common.h"
#include "dp/accountant.h"
#include "eval/error.h"
#include "eval/experiment.h"
#include "mechanisms/aim.h"

int main(int argc, char** argv) {
  using namespace aim;
  bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  if (flags.datasets.empty()) flags.datasets = {"fire"};
  std::vector<double> epsilons = flags.epsilons.empty()
                                     ? std::vector<double>{0.1, 1.0, 10.0}
                                     : flags.epsilons;
  // Paper sweep: 1.25 MB to 1.28 GB; scaled default sweeps a smaller range
  // matched to the scaled data (--full restores the paper range).
  std::vector<double> capacities =
      flags.full
          ? std::vector<double>{1.25, 5, 20, 80, 320, 1280}
          : std::vector<double>{0.25, 1.0, 4.0};

  std::cout << "# Figure 4(a,b) — AIM error and runtime vs model capacity "
               "(fire, ALL-3WAY)\n";
  TablePrinter table({"dataset", "epsilon", "capacity_mb", "error_mean",
                      "error_min", "error_max", "seconds"});
  for (const SimulatedData& sim : bench::LoadDatasets(flags)) {
    Workload workload = bench::MakeAll3Way(sim);
    for (double eps : epsilons) {
      for (double capacity : capacities) {
        AimOptions options;
        options.max_size_mb = capacity;
        options.round_estimation.max_iters = flags.round_iters;
        options.final_estimation.max_iters = flags.final_iters;
        options.record_candidates = false;
        AimMechanism mechanism(options);
        TrialStats stats = RunTrials(mechanism, sim.data, workload, eps,
                                     kPaperDelta, flags.trials, flags.seed + 1);
        table.AddRow({sim.name, FormatG(eps), FormatG(capacity),
                      FormatG(stats.mean), FormatG(stats.min),
                      FormatG(stats.max), FormatG(stats.mean_seconds, 3)});
        std::cerr << "[fig4ab] " << sim.name << " eps=" << eps
                  << " capacity=" << capacity << " error=" << stats.mean
                  << " seconds=" << stats.mean_seconds << "\n";
      }
    }
  }
  table.Print(std::cout, flags.csv);
  return 0;
}
