// Figure 1: workload error of all mechanisms on the ALL-3WAY workload.

#include "fig_workload.h"

int main(int argc, char** argv) {
  return aim::bench::RunWorkloadFigure(argc, argv, "Figure 1 (ALL-3WAY)",
                                       &aim::bench::MakeAll3Way);
}
