// Figure 5: the interpretable error rate of AIM — the fraction of records a
// (non-private) with-replacement resample needs to match AIM's workload
// error, per dataset, workload, and epsilon (Appendix C). Mechanism errors
// are measured with per-dataset-normalized marginals, matching Appendix C's
// closed-form subsampling analysis.

#include <iostream>

#include "bench_common.h"
#include "dp/accountant.h"
#include "eval/error.h"
#include "eval/experiment.h"
#include "mechanisms/aim.h"
#include "uncertainty/subsampling.h"

int main(int argc, char** argv) {
  using namespace aim;
  bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  if (flags.datasets.empty() && !flags.full) {
    flags.datasets = {"adult", "fire", "nltcs", "titanic"};
  }
  std::vector<double> epsilons =
      !flags.epsilons.empty()
          ? flags.epsilons
          : (flags.full ? PaperEpsilonGrid() : std::vector<double>{1.0, 10.0});

  struct NamedWorkload {
    const char* name;
    Workload (*make)(const SimulatedData&);
  };
  // Appendix C's names: GENERAL = ALL-3WAY, WEIGHTED = SKEWED.
  const NamedWorkload workloads[] = {
      {"general", &bench::MakeAll3Way},
      {"target", &bench::MakeTarget},
      {"weighted", &bench::MakeSkewed},
  };

  std::cout << "# Figure 5 — subsampling fraction matching AIM's error\n";
  TablePrinter table(
      {"dataset", "workload", "epsilon", "aim_error", "fraction"});
  for (const SimulatedData& sim : bench::LoadDatasets(flags)) {
    for (const NamedWorkload& nw : workloads) {
      Workload workload = nw.make(sim);
      for (double eps : epsilons) {
        AimOptions options;
        options.max_size_mb = flags.max_size_mb;
        options.round_estimation.max_iters = flags.round_iters;
        options.final_estimation.max_iters = flags.final_iters;
        options.record_candidates = false;
        AimMechanism mechanism(options);
        Rng rng(flags.seed + 29);
        MechanismResult result =
            mechanism.Run(sim.data, workload, CdpRho(eps, kPaperDelta), rng);
        double error =
            NormalizedWorkloadError(sim.data, result.synthetic, workload);
        double fraction =
            MatchingSubsamplingFraction(sim.data, workload, error);
        table.AddRow({sim.name, nw.name, FormatG(eps), FormatG(error),
                      FormatG(fraction, 3)});
        std::cerr << "[fig5] " << sim.name << " " << nw.name << " eps=" << eps
                  << " fraction=" << fraction << "\n";
      }
    }
  }
  table.Print(std::cout, flags.csv);
  return 0;
}
